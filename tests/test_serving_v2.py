"""Serving API v2: QueryBackend protocol, open_service, policies, shims."""

import gc
import warnings

import pytest

from repro import graphs
from repro.serving import (
    AdaptivePartitioner,
    BuildConfig,
    CacheConfig,
    ExplicitHotSet,
    OnlineHotSet,
    QueryBackend,
    Registry,
    RoutingService,
    ServingConfig,
    ServingStats,
    ShardedRoutingService,
    WORKLOAD_NAMES,
    WorkloadConfig,
    make_workload,
    open_service,
    register_workload,
)
from repro.serving.registry import WORKLOADS


@pytest.fixture(scope="module")
def v2_graph():
    return graphs.erdos_renyi_graph(30, 0.15, graphs.uniform_weights(1, 50),
                                    seed=17)


@pytest.fixture(scope="module")
def artifact_path(v2_graph, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("v2") / "hierarchy.artifact")
    config = ServingConfig(artifact_path=path, build=BuildConfig(seed=4))
    open_service(config, graph=v2_graph)
    return path


@pytest.fixture(scope="module")
def v2_config(artifact_path):
    return ServingConfig(artifact_path=artifact_path,
                         build=BuildConfig(seed=4))


class TestQueryBackendProtocol:
    def test_local_backend_satisfies_protocol(self, v2_config):
        backend = open_service(v2_config)
        assert isinstance(backend, QueryBackend)
        assert isinstance(backend, RoutingService)

    def test_sharded_backend_satisfies_protocol(self, v2_config, v2_graph):
        import dataclasses

        config = dataclasses.replace(v2_config, workers=2)
        backend = open_service(config, graph=v2_graph)
        try:
            assert isinstance(backend, QueryBackend)
            assert isinstance(backend, ShardedRoutingService)
        finally:
            backend.close()

    def test_local_context_manager_and_close_idempotent(self, v2_config):
        with open_service(v2_config) as backend:
            nodes = backend.graph.nodes()
            assert backend.route_batch([(nodes[0], nodes[1])])
        backend.close()
        backend.close()

    def test_query_stats_is_the_uniform_accessor(self, v2_config, v2_graph):
        import dataclasses

        pairs = [(v2_graph.nodes()[0], v2_graph.nodes()[5])] * 4
        local = open_service(v2_config)
        local.distance_batch(pairs)
        assert local.query_stats().distance_queries == 4
        with open_service(dataclasses.replace(v2_config, workers=2),
                          graph=v2_graph) as sharded:
            sharded.distance_batch(pairs)
            assert sharded.query_stats().distance_queries == 4


class TestOpenServiceIdentity:
    """Acceptance: v2 backends answer identically to the pre-redesign paths."""

    @pytest.mark.parametrize("shape", WORKLOAD_NAMES)
    def test_local_backend_matches_v1_service(self, v2_graph, v2_config,
                                              shape):
        workload = make_workload(shape, v2_graph, 150, seed=9)
        v1 = RoutingService.build(v2_graph, k=3, seed=4)     # pre-redesign path
        v2 = open_service(v2_config)
        v1_routes = v1.route_batch(workload.pairs)
        v2_routes = v2.route_batch(workload.pairs)
        assert [t.path for t in v2_routes] == [t.path for t in v1_routes]
        assert [t.weight for t in v2_routes] == [t.weight for t in v1_routes]
        assert (v2.distance_batch(workload.pairs)
                == v1.distance_batch(workload.pairs))

    @pytest.mark.parametrize("shape", WORKLOAD_NAMES)
    def test_sharded_backend_matches_v1_sharded(self, v2_graph, v2_config,
                                                artifact_path, shape):
        import dataclasses

        workload = make_workload(shape, v2_graph, 120, seed=5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            v1 = ShardedRoutingService.build_or_load(
                artifact_path, graph=v2_graph, k=3, seed=4, num_workers=2)
        with v1:
            v1_routes = v1.route_batch(workload.pairs)
            v1_dists = v1.distance_batch(workload.pairs)
        config = dataclasses.replace(v2_config, workers=2)
        with open_service(config, graph=v2_graph) as v2:
            v2_routes = v2.route_batch(workload.pairs)
            v2_dists = v2.distance_batch(workload.pairs)
        assert [t.path for t in v2_routes] == [t.path for t in v1_routes]
        assert v2_dists == v1_dists

    def test_identity_holds_with_all_policies_on(self, v2_graph, v2_config):
        """Hot-set promotion and adaptive partitioning change where repeats
        are answered, never what the answer is."""
        import dataclasses

        workload = make_workload("bursty", v2_graph, 200, seed=3)
        reference = open_service(v2_config).route_batch(workload.pairs)
        config = dataclasses.replace(
            v2_config, workers=2, partitioner="adaptive",
            partitioner_params={"feedback_every": 1, "min_window": 1},
            cache=CacheConfig(capacity=64, hot_set="online",
                              hot_threshold=2, hot_capacity=16))
        with open_service(config, graph=v2_graph) as fancy:
            answers = []
            for lo in range(0, len(workload.pairs), 50):
                answers.extend(fancy.route_batch(workload.pairs[lo:lo + 50]))
        assert [t.path for t in answers] == [t.path for t in reference]
        assert [t.weight for t in answers] == [t.weight for t in reference]


class TestDeprecationShims:
    def test_routing_service_shim_warns_once_and_works(self, v2_graph,
                                                       tmp_path):
        path = str(tmp_path / "shim.artifact")
        with pytest.warns(DeprecationWarning) as record:
            service = RoutingService.build_or_load(path, graph=v2_graph,
                                                   k=2, seed=1)
        assert len([w for w in record
                    if w.category is DeprecationWarning]) == 1
        nodes = v2_graph.nodes()
        assert service.route(nodes[0], nodes[1]).delivered

    def test_sharded_shim_warns_once_and_works(self, v2_graph, tmp_path):
        path = str(tmp_path / "sharded-shim.artifact")
        with pytest.warns(DeprecationWarning) as record:
            sharded = ShardedRoutingService.build_or_load(
                path, graph=v2_graph, k=2, seed=1, num_workers=2)
        assert len([w for w in record
                    if w.category is DeprecationWarning]) == 1
        nodes = v2_graph.nodes()
        with sharded:
            assert len(sharded.distance_batch([(nodes[0], nodes[2])])) == 1

    def test_new_api_path_is_warning_free(self, v2_config, v2_graph):
        import dataclasses

        nodes = v2_graph.nodes()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            local = open_service(v2_config)
            local.route_batch([(nodes[0], nodes[1])])
            with open_service(dataclasses.replace(v2_config, workers=2),
                              graph=v2_graph) as sharded:
                sharded.route_batch([(nodes[0], nodes[1])])


class TestResourceWarningOnImplicitTeardown:
    def test_del_of_running_service_warns(self, artifact_path):
        """Regression: __del__ of a still-running sharded service used to
        swallow everything silently; it must name the unclosed service."""
        service = ShardedRoutingService(artifact_path, num_workers=1).start()
        processes = [handle.process for handle in service._workers]
        with pytest.warns(ResourceWarning,
                          match="unclosed ShardedRoutingService"):
            del service
            gc.collect()
        for process in processes:
            process.join(timeout=10.0)
        assert not any(process.is_alive() for process in processes)

    def test_del_of_closed_service_is_silent(self, artifact_path):
        service = ShardedRoutingService(artifact_path, num_workers=1).start()
        service.close()
        with warnings.catch_warnings():
            warnings.simplefilter("error", ResourceWarning)
            del service
            gc.collect()


class TestOnlineHotSet:
    def make_service(self, graph, threshold=2, capacity=16):
        return RoutingService.build(
            graph, k=2, seed=1,
            cache_config=CacheConfig(capacity=256, hot_set="online",
                                     hot_threshold=threshold,
                                     hot_capacity=capacity))

    def test_promotes_after_threshold_hits(self, v2_graph):
        service = self.make_service(v2_graph, threshold=2)
        u, v = v2_graph.nodes()[0], v2_graph.nodes()[7]
        expected = service.hierarchy.route(u, v)
        service.route(u, v)                    # miss
        service.route(u, v)                    # LRU hit 1
        assert (u, v) not in service._hot_routes
        service.route(u, v)                    # LRU hit 2 -> promoted
        assert (u, v) in service._hot_routes
        assert (u, v) not in service.route_cache   # pinned copy evicted
        assert service.stats.extra["hot_promotions"] == 1
        before = service.stats.hot_hits
        trace = service.route(u, v)            # answered from the hot store
        assert service.stats.hot_hits == before + 1
        assert trace.path == expected.path and trace.weight == expected.weight

    def test_promotes_distances_independently(self, v2_graph):
        service = self.make_service(v2_graph, threshold=2)
        u, v = v2_graph.nodes()[1], v2_graph.nodes()[8]
        for _ in range(3):
            service.distance_batch([(u, v)])
        assert (u, v) in service._hot_distances
        assert (u, v) not in service._hot_routes

    def test_capacity_bounds_promotions(self, v2_graph):
        service = self.make_service(v2_graph, threshold=1, capacity=1)
        nodes = v2_graph.nodes()
        pairs = [(nodes[0], nodes[5]), (nodes[1], nodes[6]),
                 (nodes[2], nodes[7])]
        for _ in range(3):
            for pair in pairs:
                service.route(*pair)
        assert len(service._hot_routes) == 1
        assert service.stats.extra["hot_promotions"] == 1

    def test_zero_capacity_never_promotes(self, v2_graph):
        service = self.make_service(v2_graph, threshold=1, capacity=0)
        u, v = v2_graph.nodes()[0], v2_graph.nodes()[9]
        for _ in range(5):
            service.route(u, v)
        assert not service._hot_routes
        assert "hot_promotions" not in service.stats.extra

    def test_promotion_telemetry_survives_stats_merge(self):
        """Regression: per-worker hot-set extras used to be dropped by
        ServingStats.merge because workers disagree on the counts; additive
        extras are summed instead."""
        a = ServingStats(extra={"hot_promotions": 3,
                                "hot_pairs": {"route": 3, "distance": 1},
                                "worker_id": 0})
        b = ServingStats(extra={"hot_promotions": 5,
                                "hot_pairs": {"route": 5},
                                "worker_id": 1})
        merged = ServingStats.merge([a, b])
        assert merged.extra["hot_promotions"] == 8
        assert merged.extra["hot_pairs"] == {"route": 8, "distance": 1}
        assert "worker_id" not in merged.extra

    def test_promotion_pins_the_cached_value_without_recompute(self,
                                                               v2_graph):
        """Regression: promotion used to recompute the result from the
        hierarchy on the triggering cache hit; the cached value (identical
        by construction) must be pinned directly."""
        service = self.make_service(v2_graph, threshold=2)
        u, v = v2_graph.nodes()[2], v2_graph.nodes()[6]
        first = service.route(u, v)            # miss: computed and cached
        service.route(u, v)                    # hit 1
        service.route(u, v)                    # hit 2 -> promoted
        assert service._hot_routes[(u, v)] is first
        calls = []
        service.hierarchy.route = lambda *a, **k: calls.append(a)  # trip wire
        assert service.route(u, v) is first    # hot store answers
        assert not calls

    def test_explicit_policy_object_pins_on_install(self, v2_graph):
        service = RoutingService.build(v2_graph, k=2, seed=1)
        u, v = v2_graph.nodes()[3], v2_graph.nodes()[9]
        service.install_hot_set(ExplicitHotSet(pairs=[(u, v)], kind="both"))
        assert (u, v) in service._hot_routes
        assert (u, v) in service._hot_distances
        assert service.stats.extra["hot_set"] == "explicit"

    def test_replacing_policy_clears_stale_provenance(self, v2_graph):
        """Regression: replacing/detaching a policy used to leave the old
        policy's describe() keys dangling in stats.extra."""
        service = RoutingService.build(v2_graph, k=2, seed=1)
        u, v = v2_graph.nodes()[3], v2_graph.nodes()[9]
        service.install_hot_set(ExplicitHotSet(pairs=[(u, v)]))
        assert service.stats.extra["hot_set_pairs"] == 1
        service.install_hot_set(OnlineHotSet())
        assert service.stats.extra["hot_set"] == "online"
        assert "hot_set_pairs" not in service.stats.extra
        service.install_hot_set(None)
        assert "hot_set" not in service.stats.extra
        assert (u, v) in service._hot_routes   # pinned pairs stay pinned


class TestAdaptivePartitioner:
    PAIRS = [(i, i + 1) for i in range(24)]

    def starved_and_thriving(self):
        return [ServingStats(cache_hits=2, cache_misses=98),
                ServingStats(cache_hits=95, cache_misses=5)]

    def test_starts_hash_affine_and_deterministic(self):
        a = AdaptivePartitioner(3)
        b = AdaptivePartitioner(3)
        assert a.partition(self.PAIRS) == b.partition(self.PAIRS)
        # Every occurrence of a pair lands on one shard (hash-affine).
        shards = a.partition(self.PAIRS + self.PAIRS)
        seen = {}
        for shard_id, shard in enumerate(shards):
            for _, pair in shard:
                seen.setdefault(pair, set()).add(shard_id)
        assert all(len(ids) == 1 for ids in seen.values())

    def test_migrates_away_from_low_hit_rate_shard(self):
        partitioner = AdaptivePartitioner(2, feedback_every=1,
                                          min_gap=0.1,
                                          migrate_fraction=0.5, min_window=1)
        before = partitioner.partition(self.PAIRS)
        assert before[0] and before[1]         # both shards populated
        partitioner.observe(self.starved_and_thriving())
        assert partitioner.migrations > 0
        after = partitioner.partition(self.PAIRS)
        assert len(after[0]) < len(before[0])
        assert len(after[1]) > len(before[1])
        # Still a partition: every index exactly once.
        indices = sorted(i for shard in after for i, _ in shard)
        assert indices == list(range(len(self.PAIRS)))

    def test_small_windows_accumulate_instead_of_being_consumed(self):
        """Regression: observe() used to advance its hit/miss baselines even
        when the window was below min_window, so with small batches the
        deltas never summed past the threshold and the partitioner stayed
        inert forever.  Sub-threshold windows must accumulate."""
        partitioner = AdaptivePartitioner(2, feedback_every=1, min_gap=0.1,
                                          migrate_fraction=0.5,
                                          min_window=100)
        partitioner.partition(self.PAIRS)
        # Cumulative worker counters grow a little at a time; each single
        # window is below min_window.
        partitioner.observe([ServingStats(cache_hits=1, cache_misses=24),
                             ServingStats(cache_hits=24, cache_misses=1)])
        assert partitioner.migrations == 0
        partitioner.observe([ServingStats(cache_hits=2, cache_misses=58),
                             ServingStats(cache_hits=58, cache_misses=2)])
        # Accumulated window is now 120 >= 100: the rebalance must fire.
        assert partitioner.migrations > 0

    def test_small_windows_and_small_gaps_do_not_rebalance(self):
        partitioner = AdaptivePartitioner(2, min_window=1000)
        partitioner.partition(self.PAIRS)
        partitioner.observe(self.starved_and_thriving())
        assert partitioner.migrations == 0     # window below min_window
        balanced = AdaptivePartitioner(2, min_gap=0.5, min_window=1)
        balanced.partition(self.PAIRS)
        balanced.observe([ServingStats(cache_hits=60, cache_misses=40),
                          ServingStats(cache_hits=70, cache_misses=30)])
        assert balanced.migrations == 0        # gap 0.1 below min_gap 0.5

    def test_end_to_end_adaptive_sharding_reports_migrations(
            self, v2_graph, artifact_path):
        workload = make_workload("zipf", v2_graph, 300, seed=2)
        reference = RoutingService.load(artifact_path)
        expected = reference.distance_batch(workload.pairs)
        with ShardedRoutingService(
                artifact_path, num_workers=2, partitioner="adaptive",
                partitioner_params={"feedback_every": 1, "min_window": 1,
                                    "min_gap": 0.01},
                cache_config=CacheConfig(capacity=32)) as sharded:
            answers = []
            for lo in range(0, len(workload.pairs), 60):
                answers.extend(
                    sharded.distance_batch(workload.pairs[lo:lo + 60]))
            merged = sharded.merged_stats()
        assert answers == expected
        assert "partitioner_migrations" in merged.extra
        assert merged.extra["partitioner"] == "adaptive"

    def test_unknown_partitioner_rejected(self, artifact_path):
        with pytest.raises(ValueError, match="partition strategy"):
            ShardedRoutingService(artifact_path, partitioner="modulo")


class TestShardedConfigRejections:
    def test_explicit_hot_set_rejected_for_sharded(self, artifact_path):
        """Every worker would pin every pair of its own full copy."""
        with pytest.raises(ValueError, match="explicit hot sets"):
            ShardedRoutingService(
                artifact_path, num_workers=2,
                cache_config=CacheConfig(hot_set="explicit",
                                         hot_pairs=((0, 1),)))

    def test_unsaveable_sharded_build_rejected_before_building(
            self, v2_graph, tmp_path):
        """Regression: workers>1 + save_artifact=False with no artifact on
        disk used to pay the full build and then crash on the missing
        file."""
        import time

        config = ServingConfig(
            artifact_path=str(tmp_path / "never-written.artifact"),
            workers=2, save_artifact=False)
        start = time.perf_counter()
        with pytest.raises(ValueError, match="save_artifact=False"):
            open_service(config, graph=v2_graph)
        assert time.perf_counter() - start < 1.0   # rejected pre-build


class TestRegistries:
    def test_duplicate_registration_rejected_unless_replace(self):
        registry = Registry("widget")
        registry.register("a", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            registry.register("a", lambda: 2)
        registry.register("a", lambda: 3, replace=True)
        assert registry.get("a")() == 3

    def test_unknown_lookup_lists_available(self):
        registry = Registry("widget")
        registry.register("only", lambda: 1)
        with pytest.raises(ValueError, match="unknown widget .*only"):
            registry.get("missing")

    def test_register_workload_extends_make_workload(self, v2_graph):
        name = "test-fixed-pair"

        @register_workload(name)
        def fixed_pair(graph, num_queries, seed=0, **params):
            nodes = graph.nodes()
            from repro.serving import QueryWorkload
            return QueryWorkload(name=name,
                                 pairs=[(nodes[0], nodes[1])] * num_queries)

        try:
            workload = make_workload(name, v2_graph, 7)
            assert len(workload) == 7 and workload.distinct_pairs() == 1
        finally:
            WORKLOADS._entries.pop(name)

    def test_decorator_returns_the_callable(self):
        registry = Registry("widget")

        @registry.register("fn")
        def fn():
            return 42

        assert fn() == 42 and registry.get("fn") is fn
