"""Property-based tests (hypothesis) for core invariants.

Random weighted graphs are generated from a seed strategy; every property is
one the paper relies on:

* metric/feasibility properties of the distance machinery,
* the defining invariants of source detection and PDE (Definition 2.1/2.2),
* spanner stretch (used as a black box in Theorem 4.5),
* tree routing delivery,
* routing-scheme stretch bounds.
"""

import math
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import graphs
from repro.core import RoundingScheme, approximate_apsp, detect_sources_logical, solve_pde
from repro.graphs import (
    WeightedGraph,
    all_pairs_weighted_distances,
    bfs_hop_distances,
    dijkstra,
    h_hop_distances,
    path_weight,
)
from repro.routing import TreeRouting, greedy_spanner, verify_spanner
from repro.congest import build_bfs_tree


# ----------------------------------------------------------------------
# graph strategy
# ----------------------------------------------------------------------
@st.composite
def random_graphs(draw, min_nodes=4, max_nodes=16, max_weight=50):
    """Connected random weighted graphs, seeded for shrinkability."""
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10 ** 6))
    density = draw(st.sampled_from([0.15, 0.3, 0.5]))
    rng = random.Random(seed)
    g = WeightedGraph()
    for i in range(n):
        g.add_node(i)
    # random spanning tree for connectivity
    for i in range(1, n):
        g.add_edge(i, rng.randrange(i), rng.randint(1, max_weight))
    for i in range(n):
        for j in range(i + 1, n):
            if not g.has_edge(i, j) and rng.random() < density:
                g.add_edge(i, j, rng.randint(1, max_weight))
    return g


COMMON_SETTINGS = settings(max_examples=25, deadline=None,
                           suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# distance machinery
# ----------------------------------------------------------------------
class TestDistanceProperties:
    @COMMON_SETTINGS
    @given(random_graphs())
    def test_triangle_inequality(self, g):
        dist = all_pairs_weighted_distances(g)
        nodes = g.nodes()
        for a in nodes[:5]:
            for b in nodes[:5]:
                for c in nodes[:5]:
                    assert dist[a][c] <= dist[a][b] + dist[b][c] + 1e-9

    @COMMON_SETTINGS
    @given(random_graphs())
    def test_weighted_distance_below_hop_times_max_weight(self, g):
        max_w = g.max_weight()
        source = g.nodes()[0]
        wd, _ = dijkstra(g, source)
        hd = bfs_hop_distances(g, source)
        for v in g.nodes():
            assert hd[v] <= wd[v] + 1e-9          # weights are >= 1
            assert wd[v] <= hd[v] * max_w + 1e-9  # hop-shortest path is a candidate

    @COMMON_SETTINGS
    @given(random_graphs(), st.integers(min_value=1, max_value=6))
    def test_h_hop_distances_dominate_true_distances(self, g, h):
        source = g.nodes()[0]
        exact, _ = dijkstra(g, source)
        limited = h_hop_distances(g, source, h)
        for v, d in limited.items():
            assert d >= exact[v] - 1e-9


# ----------------------------------------------------------------------
# rounding scheme
# ----------------------------------------------------------------------
class TestRoundingProperties:
    @COMMON_SETTINGS
    @given(st.floats(min_value=0.05, max_value=2.0),
           st.integers(min_value=1, max_value=10 ** 6),
           st.integers(min_value=1, max_value=10 ** 6))
    def test_rounded_weights_sandwich(self, eps, max_weight, w):
        w = min(w, max_weight)
        scheme = RoundingScheme(epsilon=eps, max_weight=max_weight)
        for level in scheme.levels():
            rounded = scheme.rounded_weight(level, w)
            assert rounded >= w - 1e-9
            assert rounded < w + scheme.base(level) + 1e-6
            assert scheme.edge_length(level, w) == math.ceil(w / scheme.base(level))


# ----------------------------------------------------------------------
# source detection / PDE
# ----------------------------------------------------------------------
class TestDetectionProperties:
    @COMMON_SETTINGS
    @given(random_graphs(), st.integers(min_value=1, max_value=5),
           st.integers(min_value=1, max_value=4))
    def test_detection_output_is_correct_prefix(self, g, h, sigma):
        sources = set(g.nodes()[: max(1, g.num_nodes // 2)])
        result = detect_sources_logical(g, sources, h, sigma)
        for v in g.nodes():
            expected = []
            hd = bfs_hop_distances(g, v)
            for s in sources:
                d = hd.get(s)
                if d is not None and d <= h:
                    expected.append((d, s))
            expected.sort(key=lambda item: (item[0], repr(item[1])))
            got = [(e.distance, e.source) for e in result.lists[v]]
            assert got == expected[:sigma]

    @COMMON_SETTINGS
    @given(random_graphs(max_nodes=12), st.floats(min_value=0.1, max_value=1.0))
    def test_pde_estimates_never_undershoot(self, g, eps):
        pde = solve_pde(g, g.nodes(), h=g.num_nodes, sigma=3, epsilon=eps)
        exact = all_pairs_weighted_distances(g)
        for v, row in pde.estimates.items():
            for s, est in row.items():
                assert est >= exact[v][s] - 1e-9

    @COMMON_SETTINGS
    @given(random_graphs(max_nodes=12), st.floats(min_value=0.1, max_value=1.0))
    def test_apsp_stretch_guarantee(self, g, eps):
        result = approximate_apsp(g, epsilon=eps)
        audit = result.stretch_audit(g)
        assert audit["missing"] == 0
        assert audit["infeasible"] == 0
        assert audit["max_stretch"] <= 1 + eps + 1e-9


# ----------------------------------------------------------------------
# spanners and tree routing
# ----------------------------------------------------------------------
class TestRoutingSubstrateProperties:
    @COMMON_SETTINGS
    @given(random_graphs(), st.integers(min_value=1, max_value=4))
    def test_greedy_spanner_stretch(self, g, k):
        spanner = greedy_spanner(g, k)
        assert verify_spanner(g, spanner, k)

    @COMMON_SETTINGS
    @given(random_graphs())
    def test_tree_routing_always_delivers(self, g):
        root = g.nodes()[0]
        bfs = build_bfs_tree(g, root)
        tr = TreeRouting(root, bfs.parent)
        nodes = g.nodes()
        rng = random.Random(0)
        for _ in range(10):
            a, b = rng.choice(nodes), rng.choice(nodes)
            path = tr.route(a, b)
            assert path[0] == a and path[-1] == b
            assert path_weight(g, path) >= 0
