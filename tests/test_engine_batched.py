"""Tests for the batched multi-source detection engine and the engine registry.

The batched engine must be *list-for-list identical* to both existing engines
(the detection problem is deterministic, so the ``(distance, source)`` output
is unique); next hops may differ between engines only among equally short
paths, so they are verified semantically (each realises the listed distance).
"""

import random

import pytest

from repro import graphs
from repro.core import (
    DETECTION_ENGINES,
    detect_sources,
    detect_sources_batched,
    detect_sources_logical,
    run_source_detection_simulation,
    solve_pde,
)
from repro.graphs import WeightedGraph


def _pairs(result, node):
    return [(e.distance, e.source) for e in result.lists[node]]


def _assert_lists_identical(graph, a, b):
    for v in graph.nodes():
        assert _pairs(a, v) == _pairs(b, v), v


class TestRegistry:
    def test_registry_names(self):
        assert set(DETECTION_ENGINES) == {"logical", "batched", "simulate"}

    def test_dispatch_default_is_batched(self, grid):
        sources = set(list(grid.nodes())[:4])
        via_dispatch = detect_sources(grid, sources, h=6, sigma=3)
        direct = detect_sources_batched(grid, sources, h=6, sigma=3)
        _assert_lists_identical(grid, via_dispatch, direct)

    def test_dispatch_by_name(self, grid):
        sources = set(list(grid.nodes())[:4])
        for name in ("logical", "batched", "simulate"):
            result = detect_sources(grid, sources, h=6, sigma=3, engine=name)
            assert result.h == 6 and result.sigma == 3

    def test_dispatch_forwards_engine_kwargs(self, grid):
        sources = set(grid.nodes())
        result = detect_sources(grid, sources, h=8, sigma=3, engine="simulate",
                                message_cap=True)
        assert result.metrics.measured

    def test_unknown_engine_raises(self, grid):
        with pytest.raises(ValueError, match="unknown detection engine"):
            detect_sources(grid, {grid.nodes()[0]}, h=3, sigma=2, engine="bogus")

    def test_solve_pde_unknown_engine_raises(self, grid):
        with pytest.raises(ValueError, match="unknown engine"):
            solve_pde(grid, grid.nodes(), h=3, sigma=2, epsilon=0.5,
                      engine="bogus")


class TestBatchedIdentity:
    @pytest.mark.parametrize("h,sigma", [(0, 3), (3, 0), (1, 1), (3, 2),
                                         (6, 4), (10, 10)])
    def test_matches_logical_on_fixtures(self, grid, unit_path, h, sigma):
        for g in (grid, unit_path):
            sources = set(list(g.nodes())[: max(1, g.num_nodes // 2)])
            logical = detect_sources_logical(g, sources, h, sigma)
            batched = detect_sources_batched(g, sources, h, sigma)
            _assert_lists_identical(g, logical, batched)

    def test_matches_logical_with_edge_lengths(self):
        for seed in range(6):
            g = graphs.erdos_renyi_graph(16, 0.25, graphs.uniform_weights(1, 6),
                                         seed=seed)
            sources = set(list(g.nodes())[:5])
            length = lambda u, v, w: w
            logical = detect_sources_logical(g, sources, h=9, sigma=3,
                                             edge_length=length)
            batched = detect_sources_batched(g, sources, h=9, sigma=3,
                                             edge_length=length)
            _assert_lists_identical(g, logical, batched)

    def test_matches_simulation(self, grid):
        sources = set(list(grid.nodes())[:5])
        h, sigma = 6, 3
        batched = detect_sources_batched(grid, sources, h, sigma)
        simulated = run_source_detection_simulation(grid, sources, h, sigma)
        _assert_lists_identical(grid, batched, simulated)

    def test_matches_logical_randomized(self):
        rng = random.Random(0)
        for trial in range(25):
            n = rng.randint(4, 22)
            g = graphs.erdos_renyi_graph(n, rng.choice([0.15, 0.3, 0.5]),
                                         graphs.uniform_weights(1, 40),
                                         seed=trial)
            sources = set(rng.sample(g.nodes(), rng.randint(1, n)))
            h = rng.randint(0, 8)
            sigma = rng.randint(0, 5)
            use_lengths = rng.random() < 0.5
            length = (lambda u, v, w: w) if use_lengths else None
            logical = detect_sources_logical(g, sources, h, sigma,
                                             edge_length=length)
            batched = detect_sources_batched(g, sources, h, sigma,
                                             edge_length=length)
            _assert_lists_identical(g, logical, batched)

    def test_across_generator_suite(self, graph_zoo):
        for name, g in graph_zoo.items():
            sources = set(list(g.nodes())[:5])
            logical = detect_sources_logical(g, sources, h=7, sigma=4)
            batched = detect_sources_batched(g, sources, h=7, sigma=4)
            _assert_lists_identical(g, logical, batched)

    def test_tuple_node_ids(self):
        nodes = [("dc", i) for i in range(6)]
        edges = [(nodes[i], nodes[i + 1], i + 1) for i in range(5)]
        g = WeightedGraph.from_edges(edges)
        sources = {nodes[0], nodes[5]}
        length = lambda u, v, w: w
        logical = detect_sources_logical(g, sources, h=12, sigma=2,
                                         edge_length=length)
        batched = detect_sources_batched(g, sources, h=12, sigma=2,
                                         edge_length=length)
        _assert_lists_identical(g, logical, batched)

    def test_source_not_in_graph_raises(self, unit_path):
        with pytest.raises(ValueError):
            detect_sources_batched(unit_path, {99}, h=3, sigma=2)
        # Validation must fire even on the sigma=0 early-return path, matching
        # the logical engine (the engines are interchangeable).
        with pytest.raises(ValueError):
            detect_sources_batched(unit_path, {99}, h=3, sigma=0)

    def test_invalid_parameters(self, unit_path):
        with pytest.raises(ValueError):
            detect_sources_batched(unit_path, {0}, h=-1, sigma=2)
        with pytest.raises(ValueError):
            detect_sources_batched(unit_path, {0}, h=3, sigma=-2)

    def test_analytic_metrics(self, unit_path):
        result = detect_sources_batched(unit_path, {0}, h=4, sigma=3)
        assert result.metrics.rounds == 4 + 3
        assert not result.metrics.measured


class TestBatchedNextHops:
    def test_next_hops_realise_listed_distances(self, grid):
        sources = set(list(grid.nodes())[:6])
        result = detect_sources_batched(grid, sources, h=10, sigma=4)
        for v in grid.nodes():
            for entry in result.lists[v]:
                if entry.source == v:
                    assert entry.next_hop is None
                    continue
                nh = entry.next_hop
                assert nh is not None
                assert grid.has_edge(v, nh)
                # The neighbour's own list contains the source one unit-step
                # closer: d(v, s) = 1 + d(nh, s) on the unit-length metric.
                nh_dist = result.distance(nh, entry.source)
                assert nh_dist == entry.distance - 1

    def test_next_hops_with_edge_lengths(self):
        g = WeightedGraph.from_edges([(0, 1, 5), (1, 2, 5), (0, 2, 20)])
        result = detect_sources_batched(g, {0}, h=12, sigma=1,
                                        edge_length=lambda u, v, w: w)
        assert _pairs(result, 2) == [(10, 0)]
        assert result.lists[2][0].next_hop == 1


class TestPDEBatchedEngine:
    def test_pde_lists_identical_to_logical(self, small_weighted_graph,
                                            mixed_scale_graph):
        for g in (small_weighted_graph, mixed_scale_graph):
            logical = solve_pde(g, g.nodes(), h=6, sigma=5, epsilon=0.25,
                                engine="logical")
            batched = solve_pde(g, g.nodes(), h=6, sigma=5, epsilon=0.25,
                                engine="batched")
            for v in g.nodes():
                log_pairs = [(e.estimate, e.source) for e in logical.lists[v]]
                bat_pairs = [(e.estimate, e.source) for e in batched.lists[v]]
                assert log_pairs == bat_pairs
            assert logical.estimates == batched.estimates
            assert logical.levels_used == batched.levels_used

    def test_pde_batched_matches_simulation(self):
        g = graphs.erdos_renyi_graph(16, 0.25, graphs.uniform_weights(1, 30),
                                     seed=8)
        sources = list(g.nodes())[:5]
        batched = solve_pde(g, sources, h=6, sigma=3, epsilon=0.5,
                            engine="batched")
        simulated = solve_pde(g, sources, h=6, sigma=3, epsilon=0.5,
                              engine="simulate")
        for v in g.nodes():
            bat_pairs = [(e.estimate, e.source) for e in batched.lists[v]]
            sim_pairs = [(e.estimate, e.source) for e in simulated.lists[v]]
            assert bat_pairs == sim_pairs

    def test_pde_default_engine_is_batched(self, grid):
        default = solve_pde(grid, grid.nodes()[:3], h=4, sigma=2, epsilon=0.5)
        explicit = solve_pde(grid, grid.nodes()[:3], h=4, sigma=2, epsilon=0.5,
                             engine="batched")
        assert default.estimates == explicit.estimates

    def test_store_levels_false_streams_levels(self, grid):
        kept = solve_pde(grid, grid.nodes()[:3], h=4, sigma=2, epsilon=0.5,
                         store_levels=True)
        dropped = solve_pde(grid, grid.nodes()[:3], h=4, sigma=2, epsilon=0.5,
                            store_levels=False)
        assert kept.per_level is not None
        assert len(kept.per_level) == kept.rounding.num_levels
        assert dropped.per_level is None
        assert kept.estimates == dropped.estimates
