"""Telemetry core: histograms, registries, and cross-worker merges."""

import math
import pickle
import random

import pytest

from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    make_registry,
    merge_exports,
)
from repro.serving.cache import ServingStats


class TestHistogram:
    def test_empty_quantiles_are_nan(self):
        hist = Histogram()
        assert math.isnan(hist.quantile(0.5))
        assert math.isnan(hist.quantile(0.99))
        assert math.isnan(hist.mean)
        payload = hist.to_dict()
        assert payload["count"] == 0
        assert payload["min"] is None and payload["max"] is None

    def test_single_sample_every_quantile_is_that_sample(self):
        hist = Histogram()
        hist.observe(0.0123)
        for q in (0.0, 0.5, 0.95, 0.99, 1.0):
            assert hist.quantile(q) == pytest.approx(0.0123)
        assert hist.mean == pytest.approx(0.0123)

    def test_overflow_samples_clamp_to_observed_max(self):
        hist = Histogram(lo=1e-6, hi=1.0)
        hist.observe(0.5)
        hist.observe(200.0)   # far above hi -> overflow bucket
        hist.observe(300.0)
        assert hist.quantile(0.99) == pytest.approx(300.0)
        assert hist.max == pytest.approx(300.0)
        assert hist.count == 3

    def test_underflow_samples_clamp_to_observed_min(self):
        hist = Histogram(lo=1e-3, hi=1.0)
        hist.observe(1e-9)
        assert hist.quantile(0.5) == pytest.approx(1e-9)

    def test_quantile_accuracy_within_bucket_resolution(self):
        hist = Histogram()
        rng = random.Random(7)
        values = [rng.uniform(0.001, 0.1) for _ in range(5000)]
        for value in values:
            hist.observe(value)
        values.sort()
        for q in (0.5, 0.95, 0.99):
            exact = values[min(len(values) - 1,
                               max(0, math.ceil(q * len(values)) - 1))]
            estimate = hist.quantile(q)
            # bucket geometry: 4 buckets per doubling => at most ~19%
            # relative error; assert a slightly looser envelope
            assert estimate == pytest.approx(exact, rel=0.25)

    def test_merge_is_commutative_and_associative(self):
        rng = random.Random(11)
        samples = [[rng.expovariate(50.0) for _ in range(200)]
                   for _ in range(3)]

        def build(chunk):
            hist = Histogram()
            for value in chunk:
                hist.observe(value)
            return hist

        a_b = build(samples[0]).merge(build(samples[1]))
        b_a = build(samples[1]).merge(build(samples[0]))
        assert a_b.to_dict() == b_a.to_dict()

        left = build(samples[0]).merge(build(samples[1])) \
            .merge(build(samples[2]))
        right = build(samples[0]).merge(
            build(samples[1]).merge(build(samples[2])))
        assert left.to_dict() == right.to_dict()

        # vs. one histogram that saw every sample: identical up to float
        # summation order in the running total
        everything = build(samples[0] + samples[1] + samples[2]).to_dict()
        combined = left.to_dict()
        assert combined.pop("total") == pytest.approx(
            everything.pop("total"))
        assert combined == everything

    def test_merge_rejects_layout_mismatch(self):
        with pytest.raises(ValueError):
            Histogram().merge(Histogram(lo=1e-3))

    def test_dict_round_trip(self):
        hist = Histogram()
        for value in (0.001, 0.004, 0.2, 50.0):
            hist.observe(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.quantile(0.99) == hist.quantile(0.99)

    def test_pickle_round_trip(self):
        hist = Histogram()
        for value in (0.002, 0.03, 0.03, 1.5):
            hist.observe(value)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone.to_dict() == hist.to_dict()
        clone.observe(0.01)  # rebuilt bounds must still work
        assert clone.count == hist.count + 1


class TestRegistry:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc()
        registry.counter("hits").inc(2)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(0.01)
        export = registry.export()
        assert export["hits"]["value"] == 3
        assert export["depth"]["value"] == 4
        assert export["lat"]["count"] == 1

    def test_name_type_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_span_observes_elapsed_time(self):
        ticks = iter([10.0, 10.25])
        registry = MetricsRegistry(clock=lambda: next(ticks))
        with registry.span("stage"):
            pass
        export = registry.export()
        assert export["stage"]["count"] == 1
        assert registry.histogram("stage").quantile(0.5) \
            == pytest.approx(0.25)

    def test_registry_pickles(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        registry.histogram("h").observe(0.1)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.export() == registry.export()
        with clone.span("s"):
            pass  # restored clock must work

    def test_null_registry_is_free_and_inert(self):
        assert isinstance(make_registry(False), NullRegistry)
        assert isinstance(make_registry(True), MetricsRegistry)
        assert make_registry(False) is NULL_REGISTRY
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("x").inc()
        NULL_REGISTRY.gauge("y").set(3)
        with NULL_REGISTRY.span("z"):
            pass
        assert NULL_REGISTRY.export() == {}


class TestMergeExports:
    def test_counters_sum_gauges_max_histograms_merge(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("hits").inc(3)
        r2.counter("hits").inc(4)
        r1.gauge("depth").set(2)
        r2.gauge("depth").set(9)
        r1.histogram("lat").observe(0.01)
        r2.histogram("lat").observe(0.04)
        r2.counter("only_r2").inc()
        merged = merge_exports([r1.export(), r2.export()])
        assert merged["hits"]["value"] == 7
        assert merged["depth"]["value"] == 9
        assert merged["lat"]["count"] == 2
        assert merged["only_r2"]["value"] == 1

    def test_merge_matches_single_registry_totals(self):
        """N per-worker registries merged == one registry that saw it all."""
        rng = random.Random(3)
        single = MetricsRegistry()
        workers = [MetricsRegistry() for _ in range(4)]
        for i in range(400):
            worker = workers[i % 4]
            value = rng.expovariate(100.0)
            single.counter("batches").inc()
            worker.counter("batches").inc()
            single.histogram("lat").observe(value)
            worker.histogram("lat").observe(value)
        merged = merge_exports([w.export() for w in workers])
        expected = single.export()
        assert merged["lat"].pop("total") == pytest.approx(
            expected["lat"].pop("total"))
        assert merged == expected

    def test_type_conflicts_raise(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("x").inc()
        r2.histogram("x").observe(0.5)
        with pytest.raises(ValueError):
            merge_exports([r1.export(), r2.export()])

    def test_merge_is_order_insensitive(self):
        r1, r2, r3 = (MetricsRegistry() for _ in range(3))
        for registry, values in ((r1, (0.01, 0.2)), (r2, (0.5,)),
                                 (r3, (0.003, 0.003, 7.0))):
            for value in values:
                registry.histogram("lat").observe(value)
                registry.counter("n").inc()
        exports = [r1.export(), r2.export(), r3.export()]
        forward = merge_exports(exports)
        backward = merge_exports(exports[::-1])
        assert forward == backward


class TestServingStatsTelemetry:
    def test_merge_folds_telemetry_additively(self):
        registries = []
        for count in (2, 5):
            registry = MetricsRegistry()
            for i in range(count):
                registry.counter("probes").inc()
                registry.histogram("lat").observe(0.01 * (i + 1))
            registries.append(registry)
        stats = [ServingStats(queries=10,
                              extra={"telemetry": r.export()})
                 for r in registries]
        merged = ServingStats.merge(stats)
        assert merged.queries == 20
        telemetry = merged.extra["telemetry"]
        assert telemetry["probes"]["value"] == 7
        assert telemetry["lat"]["count"] == 7

    def test_merge_without_telemetry_has_no_telemetry_key(self):
        merged = ServingStats.merge([ServingStats(queries=1),
                                     ServingStats(queries=2)])
        assert "telemetry" not in merged.extra

    def test_warm_seconds_sums_across_merge(self):
        merged = ServingStats.merge([ServingStats(warm_seconds=0.25),
                                     ServingStats(warm_seconds=0.5),
                                     ServingStats()])
        assert merged.warm_seconds == pytest.approx(0.75)
