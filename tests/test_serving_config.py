"""Config-family contracts: round-trips, unknown-key rejection, CLI parity."""

import dataclasses

import pytest

from repro.serving import (
    BuildConfig,
    CacheConfig,
    ServingConfig,
    WorkloadConfig,
)
from repro.serving.cli import FLAG_CONFIG_FIELDS, build_parser, config_from_args


def nondefault_serving_config() -> ServingConfig:
    """A config exercising every field with a non-default value."""
    return ServingConfig(
        artifact_path="/tmp/x.artifact",
        graph_spec="er:n=40,p=0.1,seed=2",
        save_artifact=False,
        workers=3,
        partitioner="adaptive",
        partitioner_params={"feedback_every": 2, "min_gap": 0.05},
        batch_size=32,
        kind="distance",
        start_method="spawn",
        warm_timeout=60.0,
        reply_timeout=90.0,
        build=BuildConfig(k=4, epsilon=0.5, seed=7, mode="budget",
                          engine="logical"),
        cache=CacheConfig(policy="lru", capacity=512, hot_set="explicit",
                          hot_kind="both", hot_pairs=((1, 2), (3, 4)),
                          hot_threshold=5, hot_capacity=10),
        workload=WorkloadConfig(name="bursty", num_queries=250, seed=9,
                                params={"skew": 1.5, "burst_length": 20}),
    )


class TestRoundTrips:
    @pytest.mark.parametrize("config", [
        BuildConfig(),
        BuildConfig(k=5, epsilon=1.0, seed=3, mode="spd", engine="simulate"),
        CacheConfig(),
        CacheConfig(capacity=0, hot_set="online", hot_threshold=2,
                    hot_capacity=4),
        CacheConfig(hot_set="explicit", hot_pairs=((0, 1), ("a", "b"))),
        WorkloadConfig(),
        WorkloadConfig(name="locality", num_queries=10, seed=1,
                       params={"hop_radius": 3, "bias": 0.5}),
        ServingConfig(),
    ])
    def test_from_dict_of_to_dict_is_identity(self, config):
        assert type(config).from_dict(config.to_dict()) == config

    def test_full_nondefault_round_trip(self):
        config = nondefault_serving_config()
        assert ServingConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_safe(self):
        import json

        config = nondefault_serving_config()
        rehydrated = ServingConfig.from_dict(
            json.loads(json.dumps(config.to_dict())))
        assert rehydrated == config

    def test_hot_pairs_normalised_to_tuples(self):
        config = CacheConfig(hot_pairs=[[1, 2], (3, 4)])
        assert config.hot_pairs == ((1, 2), (3, 4))


class TestUnknownKeys:
    @pytest.mark.parametrize("cls", [BuildConfig, CacheConfig,
                                     WorkloadConfig, ServingConfig])
    def test_top_level_unknown_key_rejected(self, cls):
        data = cls().to_dict()
        data["no_such_option"] = 1
        with pytest.raises(ValueError, match="no_such_option"):
            cls.from_dict(data)

    def test_nested_unknown_key_rejected(self):
        data = ServingConfig().to_dict()
        data["cache"]["eviction"] = "lfu"
        with pytest.raises(ValueError, match="eviction"):
            ServingConfig.from_dict(data)

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="expects a dict"):
            BuildConfig.from_dict("k=3")


class TestValidation:
    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError, match="k must be"):
            BuildConfig(k=0)
        with pytest.raises(ValueError, match="epsilon"):
            BuildConfig(epsilon=0)
        with pytest.raises(ValueError, match="capacity"):
            CacheConfig(capacity=-1)
        with pytest.raises(ValueError, match="hot_kind"):
            CacheConfig(hot_kind="everything")
        with pytest.raises(ValueError, match="hot_threshold"):
            CacheConfig(hot_threshold=0)
        with pytest.raises(ValueError, match="num_queries"):
            WorkloadConfig(num_queries=-1)
        with pytest.raises(ValueError, match="workers"):
            ServingConfig(workers=0)
        with pytest.raises(ValueError, match="batch_size"):
            ServingConfig(batch_size=0)
        with pytest.raises(ValueError, match="kind"):
            ServingConfig(kind="latency")
        with pytest.raises(ValueError, match="build must be"):
            ServingConfig(build={"k": 3})

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BuildConfig().k = 5
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServingConfig().workers = 2

    def test_workload_seed_inherits_build_seed(self):
        config = ServingConfig(build=BuildConfig(seed=11))
        assert config.workload_seed() == 11
        pinned = ServingConfig(build=BuildConfig(seed=11),
                               workload=WorkloadConfig(seed=4))
        assert pinned.workload_seed() == 4


class TestCliParity:
    """Every ``repro-serve`` flag maps onto a config field (satellite)."""

    def test_mapping_is_total_over_the_parser(self):
        parser = build_parser()
        dests = sorted(action.dest for action in parser._actions
                       if action.dest != "help")
        assert dests == sorted(FLAG_CONFIG_FIELDS), (
            "every repro-serve flag must appear in FLAG_CONFIG_FIELDS "
            "(and vice versa)")

    def test_mapped_config_fields_exist(self):
        config = ServingConfig()
        for dest, path in FLAG_CONFIG_FIELDS.items():
            if path is None:      # presentation-only / runtime-derived flags
                continue
            node = config
            for part in path.split("."):
                if isinstance(node, dict):
                    # Free-form params bucket: shape-specific keys live
                    # here by design; reaching a dict is a valid terminal.
                    break
                assert hasattr(node, part), (
                    f"flag --{dest.replace('_', '-')} maps to {path!r} "
                    f"but {part!r} is not a config field")
                node = getattr(node, part)

    def test_parsed_flags_land_in_config(self):
        parser = build_parser()
        args = parser.parse_args([
            "--graph", "grid:rows=4,cols=4", "--artifact", "/tmp/a.artifact",
            "--k", "4", "--epsilon", "0.5", "--mode", "budget", "--seed", "6",
            "--engine", "logical", "--workload", "bursty", "--queries", "77",
            "--skew", "1.7", "--burst-length", "15", "--burst-rate", "0.1",
            "--burst-intensity", "0.5", "--drift-period", "50",
            "--batch-size", "16", "--cache-size", "99",
            "--cache-policy", "lru", "--kind", "distance",
            "--hot-set", "online", "--hot-threshold", "3",
            "--hot-capacity", "44", "--workers", "2",
            "--partitioner", "adaptive"])
        config = config_from_args(args, parser)
        assert config.graph_spec == "grid:rows=4,cols=4"
        assert config.artifact_path == "/tmp/a.artifact"
        assert config.build == BuildConfig(k=4, epsilon=0.5, seed=6,
                                           mode="budget", engine="logical")
        assert config.workload.name == "bursty"
        assert config.workload.num_queries == 77
        assert config.workload.params == {"skew": 1.7, "burst_length": 15,
                                          "burst_rate": 0.1,
                                          "burst_intensity": 0.5,
                                          "drift_period": 50}
        assert config.batch_size == 16
        assert config.kind == "distance"
        assert config.cache.capacity == 99
        assert config.cache.policy == "lru"
        assert config.cache.hot_set == "online"
        assert config.cache.hot_threshold == 3
        assert config.cache.hot_capacity == 44
        assert config.workers == 2
        assert config.partitioner == "adaptive"

    @pytest.mark.parametrize("bad_argv", [
        ["--workload", "zipf", "--burst-length", "5"],
        ["--workload", "uniform", "--drift-period", "10"],
        ["--workload", "bursty", "--hop-radius", "2"],
    ])
    def test_inapplicable_bursty_flags_rejected(self, bad_argv):
        parser = build_parser()
        args = parser.parse_args(["--graph", "grid:rows=4,cols=4"] + bad_argv)
        with pytest.raises(SystemExit):
            config_from_args(args, parser)
