"""Tests for the analysis layer: bounds, runners, reporting."""

import math

import pytest

from repro import graphs
from repro.analysis import (
    add_ratio_column,
    complexity,
    format_value,
    render_markdown_table,
    render_table,
    run_apsp_comparison,
    run_compact_experiment,
    run_epsilon_sweep,
    run_figure1_congestion,
    run_pde_scaling,
    run_prior_work_ablation,
    run_relabeling_experiment,
    run_serving_experiment,
    run_tz_comparison,
)


@pytest.fixture(scope="module")
def bench_graph():
    return graphs.erdos_renyi_graph(18, 0.22, graphs.uniform_weights(1, 40), seed=29)


class TestComplexityBounds:
    def test_monotonicity_in_n(self):
        assert complexity.apsp_round_bound(200, 0.25) > complexity.apsp_round_bound(100, 0.25)
        assert complexity.compact_table_bound(1000, 3) > complexity.compact_table_bound(100, 3)

    def test_epsilon_dependence(self):
        assert complexity.pde_round_bound(10, 10, 0.1, 100) > \
            complexity.pde_round_bound(10, 10, 0.5, 100)

    def test_stretch_bounds(self):
        assert complexity.relabeling_stretch_bound(3) == 17
        assert complexity.compact_stretch_bound(3) == 9

    def test_compact_round_bound_uses_min(self):
        n, k = 10 ** 4, 4
        small_d = complexity.compact_round_bound(n, k, 2)
        large_d = complexity.compact_round_bound(n, k, n // 2)
        assert small_d <= large_d

    def test_figure1_bound(self):
        assert complexity.figure1_congestion_bound(5, 7) == 35

    def test_bound_table_keys(self):
        table = complexity.bound_table(100, 400, 3, 0.25, 6)
        assert "apsp_rounds" in table and "compact_stretch" in table

    def test_exact_vs_pde_detection_crossover(self):
        """For large sigma*h the exact bound exceeds the PDE bound (the
        regime the paper targets)."""
        n = 10 ** 6
        sigma = h = int(math.sqrt(n))
        assert complexity.exact_detection_round_bound(h, sigma) > \
            complexity.pde_round_bound(h, sigma, 0.5, n)


class TestReporting:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(float("inf")) == "inf"
        assert format_value(1234567.0) == "1,234,567"
        assert format_value("x") == "x"

    def test_render_table(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123456}], title="t")
        assert "t" in text and "a" in text and "10" in text

    def test_render_table_empty(self):
        assert "no records" in render_table([])

    def test_render_markdown(self):
        md = render_markdown_table([{"a": 1, "b": 2}])
        assert md.startswith("| a | b |")
        assert "| 1 | 2 |" in md

    def test_add_ratio_column(self):
        records = add_ratio_column([{"x": 10.0, "y": 5.0}], "x", "y", name="r")
        assert records[0]["r"] == pytest.approx(2.0)


class TestRunners:
    def test_apsp_comparison(self, bench_graph):
        records = run_apsp_comparison(bench_graph, epsilon=0.5)
        names = {r["algorithm"] for r in records}
        assert len(records) == 4
        ours = next(r for r in records if "Thm 4.1" in r["algorithm"])
        assert ours["max_stretch"] <= 1.5 + 1e-9
        assert ours["missing"] == 0
        exact_algs = [r for r in records if "exact" in r["algorithm"]]
        assert all(r["max_stretch"] <= 1.0 + 1e-9 for r in exact_algs)
        assert names  # all distinct names present

    def test_pde_scaling_record(self, bench_graph):
        record = run_pde_scaling(bench_graph, num_sources=4, h=5, sigma=3,
                                 epsilon=0.5, engine="simulate")
        assert record["measured"]
        assert record["rounds"] > 0
        assert record["max_broadcasts"] <= record["broadcast_bound"]

    def test_figure1_record(self):
        record = run_figure1_congestion(3, 2, epsilon=0.5)
        assert record["exact_bottleneck_messages"] >= record["paper_bound_values"]
        assert record["pde_rounds"] > 0

    def test_relabeling_record(self, bench_graph):
        record = run_relabeling_experiment(bench_graph, k=2, pair_sample=60)
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6

    def test_compact_record(self, bench_graph):
        record = run_compact_experiment(bench_graph, k=3, mode="budget",
                                        pair_sample=60)
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6
        assert record["max_table_words"] > 0

    def test_prior_ablation_record(self, bench_graph):
        record = run_prior_work_ablation(bench_graph, k=2, skeleton_probability=0.5)
        assert record["new_max_stretch"] <= record["new_stretch_bound"] + 1e-6
        assert record["prior_max_stretch"] <= record["prior_stretch_bound"] + 1e-6

    def test_epsilon_sweep(self, bench_graph):
        records = run_epsilon_sweep(bench_graph, [1.0, 0.5, 0.25])
        assert all(r["within_guarantee"] for r in records)
        levels = [r["levels"] for r in records]
        assert levels == sorted(levels)  # smaller eps -> more levels

    def test_tz_comparison(self, bench_graph):
        record = run_tz_comparison(bench_graph, k=2, pair_sample=60)
        assert record["exact_max_stretch"] <= 4 * 2 - 3 + 1e-6
        assert record["approx_max_stretch"] <= 4 * 2 - 3 + 1e-6

    def test_serving_record(self, bench_graph):
        record = run_serving_experiment(bench_graph, k=2, workload="zipf",
                                        num_queries=150, batch_size=32)
        assert record["queries"] == 150
        assert 0 < record["distinct_pairs"] <= 150
        assert record["cold_qps"] > 0 and record["warm_qps"] > 0
        # The second pass over the same stream is served from the cache.
        assert record["cache_hit_rate"] > 0.4
        assert record["warm_speedup"] > 1.0
