"""Unit tests for the WeightedGraph data structure."""

import pytest

from repro.graphs import WeightedGraph, GraphError
from repro import graphs


class TestConstruction:
    def test_empty_graph(self):
        g = WeightedGraph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert g.is_connected()

    def test_add_nodes_and_edges(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 5)
        g.add_edge(2, 3, 7)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.weight(1, 2) == 5
        assert g.weight(3, 2) == 7

    def test_add_node_idempotent(self):
        g = WeightedGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_self_loop_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 1, 3)

    def test_non_positive_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 0)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, -4)

    def test_non_integer_weight_rejected(self):
        g = WeightedGraph()
        with pytest.raises(GraphError):
            g.add_edge(1, 2, 2.5)
        with pytest.raises(GraphError):
            g.add_edge(1, 2, True)

    def test_edge_overwrite_keeps_edge_count(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 5)
        g.add_edge(1, 2, 9)
        assert g.num_edges == 1
        assert g.weight(1, 2) == 9

    def test_remove_edge(self):
        g = WeightedGraph()
        g.add_edge(1, 2, 5)
        g.remove_edge(1, 2)
        assert g.num_edges == 0
        assert not g.has_edge(1, 2)

    def test_remove_missing_edge_raises(self):
        g = WeightedGraph()
        g.add_node(1)
        g.add_node(2)
        with pytest.raises(GraphError):
            g.remove_edge(1, 2)

    def test_from_edges(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 3)], nodes=[0, 1, 2, 3])
        assert g.num_nodes == 4
        assert g.num_edges == 2


class TestQueries:
    def test_neighbors_and_degree(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 1), (0, 3, 1)])
        assert set(g.neighbors(0)) == {1, 2, 3}
        assert g.degree(0) == 3
        assert g.degree(1) == 1

    def test_edges_yields_each_once(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 3), (2, 0, 4)])
        edges = list(g.edges())
        assert len(edges) == 3

    def test_missing_edge_weight_raises(self):
        g = WeightedGraph.from_edges([(0, 1, 2)])
        with pytest.raises(GraphError):
            g.weight(0, 2)

    def test_max_and_total_weight(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 10)])
        assert g.max_weight() == 10
        assert g.total_weight() == 12

    def test_contains_and_len(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        assert 0 in g
        assert 5 not in g
        assert len(g) == 2

    def test_neighbor_weights_view(self):
        g = WeightedGraph.from_edges([(0, 1, 3), (0, 2, 4)])
        assert g.neighbor_weights(0) == {1: 3, 2: 4}


class TestStructure:
    def test_connectivity(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (2, 3, 1)])
        assert not g.is_connected()
        g.add_edge(1, 2, 1)
        assert g.is_connected()

    def test_connected_components(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (2, 3, 1)], nodes=[0, 1, 2, 3, 4])
        comps = g.connected_components()
        sizes = sorted(len(c) for c in comps)
        assert sizes == [1, 2, 2]

    def test_subgraph(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 2), (2, 3, 3)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert not sub.has_edge(0, 1)

    def test_copy_is_independent(self):
        g = WeightedGraph.from_edges([(0, 1, 1)])
        h = g.copy()
        h.add_edge(1, 2, 5)
        assert g.num_nodes == 2
        assert h.num_nodes == 3

    def test_reweighted(self):
        g = WeightedGraph.from_edges([(0, 1, 3), (1, 2, 5)])
        doubled = g.reweighted(lambda u, v, w: 2 * w)
        assert doubled.weight(0, 1) == 6
        assert doubled.weight(1, 2) == 10
        assert g.weight(0, 1) == 3


class TestNetworkxInterop:
    def test_roundtrip(self, small_weighted_graph):
        nx_graph = small_weighted_graph.to_networkx()
        back = WeightedGraph.from_networkx(nx_graph)
        assert back.num_nodes == small_weighted_graph.num_nodes
        assert back.num_edges == small_weighted_graph.num_edges
        for u, v, w in small_weighted_graph.edges():
            assert back.weight(u, v) == w

    def test_from_networkx_defaults(self):
        import networkx as nx

        nx_graph = nx.path_graph(4)
        g = WeightedGraph.from_networkx(nx_graph)
        assert g.num_edges == 3
        assert g.weight(0, 1) == 1
