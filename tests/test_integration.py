"""Integration tests: end-to-end runs across the graph zoo.

These tests tie all subsystems together the way the benchmarks do:
generator -> PDE/APSP -> routing schemes -> stretch audit, and
faithful-simulation vs logical-engine agreement on a non-trivial instance.
"""

import pytest

from repro import graphs
from repro.analysis import run_apsp_comparison, run_relabeling_experiment
from repro.core import approximate_apsp, solve_pde
from repro.graphs import all_pairs_weighted_distances, standard_test_suite
from repro.routing import (
    CompactRoutingHierarchy,
    RelabelingRoutingScheme,
    build_compact_routing,
)
from repro.routing.stretch import evaluate_routing, sample_pairs


@pytest.fixture(scope="module")
def suite():
    # Shrink the standard suite slightly to keep the integration run fast.
    full = standard_test_suite(seed=1)
    return {name: full[name] for name in ["grid", "tree", "er_sparse", "clique_mixed"]}


class TestEndToEndAPSP:
    def test_apsp_on_suite(self, suite):
        for name, g in suite.items():
            result = approximate_apsp(g, epsilon=0.5)
            audit = result.stretch_audit(g)
            assert audit["missing"] == 0, name
            assert audit["max_stretch"] <= 1.5 + 1e-9, name

    def test_comparison_winner_shape(self):
        """The headline comparison: our APSP beats the randomized baseline in
        rounds (by ~log n) while the exact baselines pay either n^2-ish rounds
        (Bellman-Ford worst case bound) or Theta(m) rounds (link state)."""
        g = graphs.erdos_renyi_graph(20, 0.25, graphs.mixed_scale_weights(1, 2000, 0.3),
                                     seed=33)
        records = {r["algorithm"]: r for r in run_apsp_comparison(g, epsilon=0.5)}
        ours = records["pde_apsp (Thm 4.1)"]
        rand = records["nanongkai14 (randomized)"]
        assert ours["rounds"] < rand["rounds"]
        assert ours["max_stretch"] <= 1.5 + 1e-9


class TestEndToEndRouting:
    def test_relabeling_scheme_on_suite(self, suite):
        for name, g in suite.items():
            scheme = RelabelingRoutingScheme.build(g, k=2, epsilon=0.25, seed=2)
            pairs = sample_pairs(g.nodes(), 120)
            report = evaluate_routing(scheme, g, pairs=pairs)
            assert report.delivery_rate == 1.0, name
            assert report.max_stretch <= 11 + 1e-6, name

    def test_compact_hierarchy_on_suite(self, suite):
        for name, g in suite.items():
            hierarchy = build_compact_routing(g, k=3, seed=2)
            pairs = sample_pairs(g.nodes(), 120)
            report = evaluate_routing(hierarchy, g, pairs=pairs)
            assert report.delivery_rate == 1.0, name
            assert report.max_stretch <= 9 + 1e-6, name

    def test_relabeling_runner_record(self):
        g = graphs.random_geometric_graph(24, 0.4, None, seed=3)
        record = run_relabeling_experiment(g, k=2, pair_sample=100)
        assert record["delivery_rate"] == 1.0
        assert record["max_route_stretch"] <= record["stretch_bound"] + 1e-6


class TestEnginesAgree:
    def test_pde_engines_agree_on_weighted_graph(self):
        g = graphs.grid_graph(3, 5, graphs.uniform_weights(1, 12), seed=9)
        sources = list(g.nodes())[:6]
        logical = solve_pde(g, sources, h=6, sigma=4, epsilon=0.5, engine="logical")
        simulated = solve_pde(g, sources, h=6, sigma=4, epsilon=0.5, engine="simulate")
        for v in g.nodes():
            assert [(e.estimate, e.source) for e in logical.lists[v]] == \
                [(e.estimate, e.source) for e in simulated.lists[v]]
        # The simulated run really measured its cost.
        assert simulated.metrics.measured and not logical.metrics.measured


class TestSeedStability:
    def test_schemes_deterministic_given_seed(self):
        g = graphs.erdos_renyi_graph(20, 0.2, graphs.uniform_weights(1, 30), seed=13)
        a = RelabelingRoutingScheme.build(g, k=2, seed=4)
        b = RelabelingRoutingScheme.build(g, k=2, seed=4)
        assert a.skeleton == b.skeleton
        assert {v: a.home[v] for v in g.nodes()} == {v: b.home[v] for v in g.nodes()}

    def test_hierarchy_deterministic_given_seed(self):
        g = graphs.erdos_renyi_graph(20, 0.2, graphs.uniform_weights(1, 30), seed=13)
        a = CompactRoutingHierarchy.build(g, k=3, seed=4)
        b = CompactRoutingHierarchy.build(g, k=3, seed=4)
        assert a.levels == b.levels
        assert a.build_report().max_bunch_size == b.build_report().max_bunch_size
