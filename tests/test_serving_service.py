"""RoutingService: caching, batching, build-or-load, CLI, stretch round-trip."""

import pytest

from repro import graphs
from repro.routing import build_compact_routing, evaluate_routing, sample_pairs
from repro.serving import (
    CacheConfig,
    LFUCache,
    LRUCache,
    RoutingService,
    ServingStats,
    zipf_workload,
)
from repro.serving.cli import main as serve_main, parse_graph_spec


@pytest.fixture(scope="module")
def service_graph():
    return graphs.erdos_renyi_graph(30, 0.15, graphs.uniform_weights(1, 50),
                                    seed=17)


@pytest.fixture(scope="module")
def built_service(service_graph):
    return RoutingService.build(service_graph, k=3, seed=4)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh "a"; "b" becomes LRU
        cache.put("c", 3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_zero_capacity_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_counters_and_reset(self):
        cache = LRUCache(4)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.get("absent") is None
        assert (cache.hits, cache.misses) == (1, 1)
        cache.reset()
        assert (cache.hits, cache.misses, len(cache)) == (0, 0, 0)


class TestLFUCache:
    """The frequency-aware cache policy (registered as ``lfu``)."""

    def test_evicts_least_frequent_not_least_recent(self):
        cache = LFUCache(2)
        cache.put("hot", 1)
        cache.get("hot")
        cache.get("hot")            # freq("hot") = 3 accesses
        cache.put("cold", 2)        # freq("cold") = 1
        cache.get("cold")           # "cold" is now most *recent*, freq 2
        cache.put("new", 3)         # LRU would evict "hot"; LFU evicts "cold"
        assert "hot" in cache and "new" in cache and "cold" not in cache
        assert cache.evictions == 1

    def test_frequency_ties_break_least_recently_used(self):
        cache = LFUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)           # both freq 1; "a" is older
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_zero_capacity_disables(self):
        cache = LFUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0
        assert cache.misses == 1 and cache.hits == 0

    def test_discard_and_reset(self):
        cache = LFUCache(3)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.discard("a") is True
        assert cache.discard("a") is False
        assert "a" not in cache and "b" in cache
        cache.put("c", 3)           # min-freq bookkeeping survives discard
        cache.put("d", 4)
        cache.put("e", 5)           # evicts the least-frequent of b/c/d
        assert len(cache) == 3
        cache.reset()
        assert (cache.hits, len(cache)) == (cache.misses, 0) == (0, 0)

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LFUCache(-1)

    def test_selectable_as_service_policy(self, service_graph):
        service = RoutingService.build(
            service_graph, k=2, seed=1,
            cache_config=CacheConfig(policy="lfu", capacity=64))
        assert isinstance(service.distance_cache, LFUCache)
        assert service.stats.extra["cache_policy"] == "lfu"
        u, v = service_graph.nodes()[0], service_graph.nodes()[3]
        first = service.route(u, v)
        assert service.route(u, v) is first     # cached, not recomputed


class TestHotSetDecay:
    """OnlineHotSet demotion: cold promoted pairs are unpinned (satellite)."""

    @staticmethod
    def _decaying_service(graph, decay_window, decay_threshold=1):
        return RoutingService.build(
            graph, k=2, seed=1,
            cache_config=CacheConfig(
                capacity=64, hot_set="online", hot_threshold=2,
                hot_capacity=4, hot_decay_window=decay_window,
                hot_decay_threshold=decay_threshold))

    def test_cold_promoted_pair_is_demoted(self, service_graph):
        nodes = service_graph.nodes()
        service = self._decaying_service(service_graph, decay_window=6)
        hot = (nodes[0], nodes[1])
        for _ in range(3):                      # miss, then 2 LRU hits
            service.distance_estimate(*hot)
        assert service.stats.extra["hot_promotions"] == 1
        assert service.stats.extra["hot_pairs"]["distance"] == 1
        # The promoted pair goes cold while other traffic keeps hitting
        # (and, being hot itself, gets promoted into the freed window).
        other = (nodes[2], nodes[3])
        service.distance_estimate(*other)
        for _ in range(8):
            service.distance_estimate(*other)
        assert service.stats.extra["hot_demotions"] == 1
        assert hot not in service._hot_distances
        assert other in service._hot_distances
        # Demotion returned the value to the LRU domain: the next query is
        # a cache hit, not a recomputation, and the answer is unchanged.
        misses_before = service.stats.cache_misses
        assert (service.distance_estimate(*hot)
                == service.hierarchy.distance(*hot))
        assert service.stats.cache_misses == misses_before

    def test_still_hot_pair_stays_pinned(self, service_graph):
        nodes = service_graph.nodes()
        service = self._decaying_service(service_graph, decay_window=4)
        hot = (nodes[0], nodes[1])
        for _ in range(20):                     # hot hits keep the window warm
            service.distance_estimate(*hot)
        assert service.stats.extra["hot_promotions"] == 1
        assert service.stats.extra.get("hot_demotions", 0) == 0
        assert service.stats.extra["hot_pairs"]["distance"] == 1

    def test_demotion_frees_promotion_capacity(self, service_graph):
        nodes = service_graph.nodes()
        service = RoutingService.build(
            service_graph, k=2, seed=1,
            cache_config=CacheConfig(
                capacity=64, hot_set="online", hot_threshold=2,
                hot_capacity=1, hot_decay_window=5))
        first, second = (nodes[0], nodes[1]), (nodes[2], nodes[3])
        for _ in range(3):
            service.distance_estimate(*first)   # fills the single hot slot
        assert service.stats.extra["hot_pairs"]["distance"] == 1
        for _ in range(12):                     # first goes cold -> demoted
            service.distance_estimate(*second)
        assert service.stats.extra["hot_demotions"] >= 1
        # The freed slot is available again: second can now promote.
        assert service.stats.extra["hot_pairs"]["distance"] == 1
        assert service.stats.extra["hot_promotions"] == 2

    def test_decay_requires_online_hot_set_in_cli(self, tmp_path):
        with pytest.raises(SystemExit):
            serve_main(["--graph", "grid:rows=4,cols=4",
                        "--hot-decay-window", "10"])


class TestSingleQueries:
    def test_matches_hierarchy_directly(self, service_graph, built_service):
        hierarchy = built_service.hierarchy
        pairs = sample_pairs(service_graph.nodes(), 60)
        for u, v in pairs:
            assert built_service.distance_estimate(u, v) == hierarchy.distance(u, v)
            svc_route = built_service.route(u, v)
            direct = hierarchy.route(u, v)
            assert svc_route.path == direct.path
            assert svc_route.weight == direct.weight

    def test_full_path_endpoints(self, service_graph, built_service):
        u, v = service_graph.nodes()[0], service_graph.nodes()[-1]
        path = built_service.full_path(u, v)
        assert path[0] == u and path[-1] == v

    def test_unknown_node_rejected(self, built_service):
        with pytest.raises(ValueError, match="unknown node"):
            built_service.route("nope", 0)
        with pytest.raises(ValueError, match="unknown node"):
            built_service.distance_estimate(0, "nope")

    def test_repeat_query_hits_cache(self, service_graph):
        service = RoutingService.build(service_graph, k=2, seed=1)
        u, v = service_graph.nodes()[1], service_graph.nodes()[5]
        first = service.route(u, v)
        again = service.route(u, v)
        assert again is first          # cached object, not a recomputation
        assert service.stats.cache_hits == 1
        assert service.stats.cache_misses == 1

    def test_cache_disabled_still_correct(self, service_graph, built_service):
        uncached = RoutingService(built_service.hierarchy, cache_size=0)
        u, v = service_graph.nodes()[2], service_graph.nodes()[9]
        assert uncached.route(u, v).path == built_service.route(u, v).path
        assert uncached.stats.cache_hits == 0


class TestBatchedQueries:
    def test_batch_matches_single(self, service_graph, built_service):
        pairs = sample_pairs(service_graph.nodes(), 80)
        batched_routes = built_service.route_batch(pairs)
        batched_dists = built_service.distance_batch(pairs)
        for (u, v), trace, est in zip(pairs, batched_routes, batched_dists):
            assert trace.path == built_service.hierarchy.route(u, v).path
            assert est == built_service.hierarchy.distance(u, v)

    def test_duplicates_computed_once(self, service_graph):
        service = RoutingService.build(service_graph, k=2, seed=2)
        u, v = service_graph.nodes()[0], service_graph.nodes()[3]
        results = service.route_batch([(u, v)] * 10)
        assert len(results) == 10
        assert all(r is results[0] for r in results)
        assert service.stats.cache_misses == 1
        assert service.stats.batched_queries == 10

    def test_distance_duplicates_computed_once(self, service_graph):
        service = RoutingService.build(service_graph, k=2, seed=2)
        u, v = service_graph.nodes()[0], service_graph.nodes()[3]
        estimates = service.distance_batch([(u, v)] * 10)
        assert len(estimates) == 10 and len(set(estimates)) == 1
        assert service.stats.cache_misses == 1

    def test_stats_accounting(self, service_graph):
        service = RoutingService.build(service_graph, k=2, seed=3)
        pairs = sample_pairs(service_graph.nodes(), 20)
        service.route_batch(pairs)
        service.distance_batch(pairs)
        assert service.stats.queries == 40
        assert service.stats.route_queries == 20
        assert service.stats.distance_queries == 20
        assert service.stats.batches == 2


class TestHotPairs:
    def test_hot_pairs_bypass_lru(self, service_graph):
        service = RoutingService.build(service_graph, k=2, seed=5,
                                       cache_size=0)
        u, v = service_graph.nodes()[0], service_graph.nodes()[7]
        assert service.precompute_hot_pairs([(u, v)], kind="both") == 1
        trace = service.route(u, v)
        est = service.distance_estimate(u, v)
        assert service.stats.hot_hits == 2
        assert trace.path[0] == u and trace.path[-1] == v
        assert est == service.hierarchy.distance(u, v)

    def test_bad_kind_rejected(self, built_service):
        with pytest.raises(ValueError, match="kind"):
            built_service.precompute_hot_pairs([], kind="everything")

    def test_hot_pair_count_reported_per_kind(self, service_graph):
        service = RoutingService.build(service_graph, k=2, seed=6)
        nodes = service_graph.nodes()
        service.precompute_hot_pairs([(nodes[0], nodes[1])], kind="route")
        service.precompute_hot_pairs([(nodes[i], nodes[i + 1])
                                      for i in range(3)], kind="distance")
        assert service.stats.extra["hot_pairs"] == {"route": 1, "distance": 3}

    def test_pinning_evicts_lru_copies(self, service_graph):
        """Regression: a pair queried before being pinned used to stay in the
        LRU caches too — double storage outside clear_cache bookkeeping."""
        service = RoutingService.build(service_graph, k=2, seed=7)
        u, v = service_graph.nodes()[0], service_graph.nodes()[4]
        service.route(u, v)
        service.distance_estimate(u, v)
        assert (u, v) in service.route_cache
        assert (u, v) in service.distance_cache
        service.precompute_hot_pairs([(u, v)], kind="both")
        assert (u, v) not in service.route_cache
        assert (u, v) not in service.distance_cache
        # The pinned copy (not a stale LRU one) answers, as a hot hit.
        before = service.stats.hot_hits
        assert service.route(u, v).path == service.hierarchy.route(u, v).path
        assert service.stats.hot_hits == before + 1


class TestBuildOrLoad:
    def test_builds_then_loads(self, service_graph, tmp_path):
        path = str(tmp_path / "service.artifact")
        first = RoutingService.build_or_load(path, graph=service_graph,
                                             k=3, seed=4)
        assert first.stats.build_seconds is not None
        assert first.stats.artifact_bytes > 0

        second = RoutingService.build_or_load(path)
        assert second.stats.load_seconds is not None
        assert second.stats.build_seconds is None

        pairs = sample_pairs(service_graph.nodes(), 50)
        assert ([t.path for t in first.route_batch(pairs)]
                == [t.path for t in second.route_batch(pairs)])
        assert first.distance_batch(pairs) == second.distance_batch(pairs)

    def test_missing_artifact_without_graph_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no graph"):
            RoutingService.build_or_load(str(tmp_path / "absent.artifact"))

    def test_stale_artifact_params_rejected(self, service_graph, tmp_path):
        from repro.serving import ArtifactError

        path = str(tmp_path / "stale.artifact")
        RoutingService.build_or_load(path, graph=service_graph, k=2, seed=4)
        # Same parameters: loads fine.
        RoutingService.build_or_load(path, graph=service_graph, k=2, seed=4)
        # Different k with a build intent: refuse to serve stale answers.
        with pytest.raises(ArtifactError, match="different parameters"):
            RoutingService.build_or_load(path, graph=service_graph, k=3, seed=4)
        # Pure load intent (no graph) accepts whatever is persisted.
        RoutingService.build_or_load(path)

    def test_header_missing_requested_key_is_stale(self, service_graph,
                                                   tmp_path):
        """Regression: a requested parameter *absent* from the header (an
        artifact predating it) used to be silently skipped by the freshness
        check, so a mismatched artifact could be served as fresh."""
        from repro.routing import build_compact_routing
        from repro.serving import ArtifactError
        from repro.serving.artifacts import KIND_HIERARCHY, write_artifact

        hierarchy = build_compact_routing(service_graph, k=2, seed=4)
        path = str(tmp_path / "pre-engine.artifact")
        metadata = {"n": service_graph.num_nodes,
                    "m": service_graph.num_edges}
        metadata.update(hierarchy.build_params)
        del metadata["engine"]        # simulate an artifact predating "engine"
        write_artifact(path, KIND_HIERARCHY, hierarchy.export_state(),
                       metadata=metadata,
                       state_version=hierarchy.STATE_VERSION)
        with pytest.raises(ArtifactError, match="engine"):
            RoutingService.build_or_load(path, graph=service_graph, k=2,
                                         seed=4)
        # Without a build intent the artifact still loads as-is.
        RoutingService.build_or_load(path)

    def test_mode_mismatch_with_auto_request_is_stale(self, service_graph,
                                                      tmp_path):
        """An explicitly-built artifact is not served for an auto request
        (auto may choose a different truncation level) and vice versa."""
        from repro.serving import ArtifactError

        path = str(tmp_path / "explicit-mode.artifact")
        RoutingService.build_or_load(path, graph=service_graph, k=3, seed=4,
                                     mode="budget")
        RoutingService.build_or_load(path, graph=service_graph, k=3, seed=4,
                                     mode="budget")   # same request: fine
        with pytest.raises(ArtifactError, match="mode"):
            RoutingService.build_or_load(path, graph=service_graph, k=3,
                                         seed=4, mode="auto")


class TestStretchRoundTrip:
    @pytest.mark.parametrize("make_graph,k", [
        (lambda: graphs.erdos_renyi_graph(
            26, 0.18, graphs.uniform_weights(1, 60), seed=23), 3),
        (lambda: graphs.random_geometric_graph(24, 0.4, None, seed=31), 2),
    ])
    def test_served_stretch_no_worse_than_fresh_build(self, make_graph, k,
                                                      tmp_path):
        """Satellite criterion: routes served from a reloaded artifact have
        stretch bounded by what the freshly built hierarchy measured."""
        graph = make_graph()
        hierarchy = build_compact_routing(graph, k=k, seed=13)
        pairs = sample_pairs(graph.nodes())
        fresh_report = evaluate_routing(hierarchy, graph, pairs=pairs)
        assert fresh_report.delivery_rate == 1.0
        assert fresh_report.max_stretch <= hierarchy.theoretical_stretch_bound()

        path = str(tmp_path / "stretch.artifact")
        RoutingService(hierarchy).save(path)
        served = RoutingService.load(path)
        served_report = evaluate_routing(served, graph, pairs=pairs)
        assert served_report.delivery_rate == 1.0
        assert served_report.max_stretch <= fresh_report.max_stretch + 1e-9


class TestCli:
    def test_parse_graph_spec(self):
        graph = parse_graph_spec("er:n=30,p=0.2,seed=4,weights=uniform:1:9")
        assert graph.num_nodes == 30
        assert graph.max_weight() <= 9
        grid = parse_graph_spec("grid:rows=3,cols=4")
        assert grid.num_nodes == 12

    def test_parse_road_spec(self):
        road = parse_graph_spec(
            "road:rows=8,cols=8,highway_every=4,shortcut_fraction=0.1,seed=2")
        assert road.num_nodes == 64
        assert road.is_connected()
        # corridor row 0 rides at highway weight 1
        assert road.weight(0, 1) == 1
        from repro.graphs import road_grid_graph
        expected = road_grid_graph(8, 8, highway_every=4,
                                   shortcut_fraction=0.1, seed=2)
        assert sorted(road.edges()) == sorted(expected.edges())

    def test_parse_powerlaw_spec(self):
        spec = parse_graph_spec(
            "powerlaw:n=50,exponent=2.2,min_degree=2,seed=6")
        assert spec.num_nodes == 50
        assert spec.is_connected()
        from repro.graphs import powerlaw_graph
        expected = powerlaw_graph(50, exponent=2.2, min_degree=2, seed=6)
        assert sorted(spec.edges()) == sorted(expected.edges())

    def test_parse_fattree_spec(self):
        spec = parse_graph_spec("fattree:k=4,hosts=2")
        assert spec.is_connected()
        assert spec.weight("core0", "pod0-agg0") == 1
        from repro.graphs import fat_tree_graph
        expected = fat_tree_graph(k=4, hosts_per_edge=2)
        assert sorted(spec.edges()) == sorted(expected.edges())

    @pytest.mark.parametrize("bad_spec", [
        "mystery:n=10",            # unknown family
        "er:n=10",                 # missing p
        "er:n=10,p=0.5,extra=1",   # unused key
        "er:n,p=0.5",              # malformed item
        "road:rows=4,cols=4,weights=unit",  # road family owns its weights
        "fattree:k=4,weights=unit",   # fattree family owns its weights
        "fattree:k=3,hosts=2",        # odd k
        "powerlaw:n=30,exponent=0.5",  # non-normalisable tail
    ])
    def test_bad_graph_specs_rejected(self, bad_spec):
        with pytest.raises(ValueError):
            parse_graph_spec(bad_spec)

    def test_main_builds_artifact_and_serves(self, tmp_path, capsys):
        artifact = str(tmp_path / "cli.artifact")
        argv = ["--graph", "er:n=25,p=0.2,seed=2,weights=uniform:1:20",
                "--artifact", artifact, "--k", "2",
                "--workload", "zipf", "--queries", "200", "--batch-size", "25"]
        assert serve_main(argv) == 0
        assert "q/s" in capsys.readouterr().out
        # Second invocation loads the artifact instead of rebuilding.
        assert serve_main(argv + ["--json"]) == 0
        out = capsys.readouterr().out
        assert '"load_seconds"' in out and '"queries": 200' in out

    @pytest.mark.parametrize("bad_argv", [
        ["--workload", "uniform", "--skew", "1.5"],
        ["--workload", "locality", "--skew", "1.5"],
        ["--workload", "zipf", "--hop-radius", "2"],
        ["--workload", "uniform", "--bias", "0.5"],
    ])
    def test_inapplicable_workload_flags_rejected(self, tmp_path, bad_argv):
        """Regression: --skew used to be silently ignored off-zipf, and
        locality had no way to set hop_radius/bias at all."""
        argv = ["--graph", "grid:rows=4,cols=5", "--k", "2",
                "--queries", "50"] + bad_argv
        with pytest.raises(SystemExit):
            serve_main(argv)

    def test_locality_flags_are_forwarded(self, capsys):
        import json as json_module

        from repro.serving import locality_workload

        argv = ["--graph", "grid:rows=5,cols=6,seed=3", "--k", "2",
                "--seed", "3", "--workload", "locality", "--queries", "150",
                "--hop-radius", "1", "--bias", "1.0", "--json"]
        assert serve_main(argv) == 0
        record = json_module.loads(capsys.readouterr().out)
        expected = locality_workload(parse_graph_spec("grid:rows=5,cols=6,seed=3"),
                                     150, hop_radius=1, bias=1.0, seed=3)
        assert record["distinct_pairs"] == expected.distinct_pairs()
        assert (record["hottest_pair_share"]
                == expected.skew_summary()["hottest_pair_share"])

    def test_workers_flag_serves_sharded(self, tmp_path, capsys):
        artifact = str(tmp_path / "sharded-cli.artifact")
        argv = ["--graph", "er:n=25,p=0.2,seed=2,weights=uniform:1:20",
                "--artifact", artifact, "--k", "2", "--workload", "zipf",
                "--queries", "120", "--batch-size", "30",
                "--workers", "2", "--partitioner", "hash_pair", "--json"]
        assert serve_main(argv) == 0
        import json as json_module
        record = json_module.loads(capsys.readouterr().out)
        assert record["queries"] == 120
        assert record["delivered"] == 120
        assert record["extra"]["workers"] == 2
        assert record["extra"]["partitioner"] == "hash_pair"

    def test_workers_require_artifact(self):
        with pytest.raises(SystemExit):
            serve_main(["--graph", "grid:rows=4,cols=4", "--workers", "2"])


class TestServingStats:
    def test_as_dict_and_describe(self):
        stats = ServingStats(queries=10, cache_hits=6, cache_misses=4,
                             build_seconds=1.5)
        record = stats.as_dict()
        assert record["cache_hit_rate"] == 0.6
        text = stats.describe()
        assert "hit rate" in text and "1.500s" in text

    def test_extras_cannot_shadow_core_counters(self):
        """Regression: an extra key like "queries" used to overwrite the
        real counter in the exported record; extras are namespaced now."""
        stats = ServingStats(queries=10, cache_hits=6, cache_misses=4)
        stats.extra["queries"] = "shadow-attempt"
        stats.extra["artifact_path"] = "/tmp/x.artifact"
        record = stats.as_dict()
        assert record["queries"] == 10
        assert record["extra"]["queries"] == "shadow-attempt"
        assert record["extra"]["artifact_path"] == "/tmp/x.artifact"

    def test_serving_a_zipf_stream_hits_cache(self, service_graph,
                                              built_service):
        service = RoutingService(built_service.hierarchy, cache_size=4096)
        workload = zipf_workload(service_graph.nodes(), 400, seed=8)
        service.route_batch(workload.pairs)
        service.route_batch(workload.pairs)
        # Within a batch duplicates dedup without touching the cache, so the
        # first pass misses once per distinct pair and the second pass hits
        # once per distinct pair.
        distinct = workload.distinct_pairs()
        assert service.stats.cache_misses == distinct
        assert service.stats.cache_hits == distinct
        assert service.stats.cache_hit_rate == 0.5
