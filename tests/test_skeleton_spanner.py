"""Tests for skeleton sampling/graphs and for the spanner constructions."""

import random

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.graphs import all_pairs_weighted_distances, dijkstra
from repro.routing import (
    baswana_sen_spanner,
    default_detection_budget,
    default_sampling_probability,
    exact_skeleton_graph,
    greedy_spanner,
    sample_skeleton,
    skeleton_distance_audit,
    skeleton_graph_from_pde,
    spanner_stretch,
    verify_spanner,
)


class TestSkeletonSampling:
    def test_probability_formula(self):
        assert default_sampling_probability(100, 1) == pytest.approx(100 ** -0.75)
        assert default_sampling_probability(100, 4) == pytest.approx(100 ** -(0.5 + 1 / 16))
        with pytest.raises(ValueError):
            default_sampling_probability(0, 2)

    def test_budget_formula(self):
        assert default_detection_budget(100, 1.0) >= 1
        assert default_detection_budget(100, 0.1) <= 100
        with pytest.raises(ValueError):
            default_detection_budget(100, 0)

    def test_sampling_deterministic_and_nonempty(self):
        nodes = list(range(50))
        s1 = sample_skeleton(nodes, 0.2, random.Random(3))
        s2 = sample_skeleton(nodes, 0.2, random.Random(3))
        assert s1 == s2
        assert sample_skeleton(nodes, 0.0, random.Random(1))  # never empty

    def test_sampling_rate_reasonable(self):
        nodes = list(range(500))
        sampled = sample_skeleton(nodes, 0.3, random.Random(7))
        assert 0.15 * 500 < len(sampled) < 0.45 * 500


class TestSkeletonGraphs:
    def test_exact_skeleton_preserves_distances_with_full_budget(self, small_weighted_graph):
        g = small_weighted_graph
        skeleton = sample_skeleton(g.nodes(), 0.4, random.Random(5))
        sk = exact_skeleton_graph(g, skeleton, h=g.num_nodes)
        audit = skeleton_distance_audit(g, sk)
        assert audit["unreachable"] == 0
        assert audit["max_ratio"] <= 1.0 + 1e-9

    def test_exact_skeleton_hop_limited(self, small_weighted_graph):
        g = small_weighted_graph
        skeleton = sample_skeleton(g.nodes(), 0.4, random.Random(5))
        sk_small = exact_skeleton_graph(g, skeleton, h=1)
        sk_big = exact_skeleton_graph(g, skeleton, h=g.num_nodes)
        assert sk_small.num_edges <= sk_big.num_edges

    def test_pde_skeleton_weights_dominate_distance(self, small_weighted_graph):
        g = small_weighted_graph
        skeleton = sample_skeleton(g.nodes(), 0.4, random.Random(5))
        pde = solve_pde(g, skeleton, h=g.num_nodes, sigma=len(skeleton), epsilon=0.25)
        sk = skeleton_graph_from_pde(pde, skeleton)
        exact = all_pairs_weighted_distances(g)
        for u, v, w in sk.edges():
            assert w >= exact[u][v] - 1e-9
            assert w <= 1.25 * exact[u][v] + 1.0  # (1+eps) plus integer rounding

    def test_pde_skeleton_distances_near_exact(self, small_weighted_graph):
        g = small_weighted_graph
        skeleton = sample_skeleton(g.nodes(), 0.4, random.Random(5))
        pde = solve_pde(g, skeleton, h=g.num_nodes, sigma=len(skeleton), epsilon=0.25)
        sk = skeleton_graph_from_pde(pde, skeleton)
        audit = skeleton_distance_audit(g, sk)
        assert audit["unreachable"] == 0
        assert audit["max_ratio"] <= 1.25 + 0.1


class TestSpanners:
    @pytest.fixture(scope="class")
    def dense_graph(self):
        return graphs.erdos_renyi_graph(28, 0.35, graphs.uniform_weights(1, 60), seed=21)

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_greedy_spanner_stretch(self, dense_graph, k):
        spanner = greedy_spanner(dense_graph, k)
        assert verify_spanner(dense_graph, spanner, k)

    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_baswana_sen_stretch(self, dense_graph, k):
        spanner = baswana_sen_spanner(dense_graph, k, random.Random(11))
        assert verify_spanner(dense_graph, spanner, k)

    def test_baswana_sen_stretch_multiple_seeds(self, dense_graph):
        for seed in range(5):
            spanner = baswana_sen_spanner(dense_graph, 3, random.Random(seed))
            assert verify_spanner(dense_graph, spanner, 3)

    def test_spanners_sparsify(self, dense_graph):
        greedy = greedy_spanner(dense_graph, 3)
        assert greedy.num_edges < dense_graph.num_edges

    def test_k1_spanner_is_whole_graph(self, dense_graph):
        spanner = baswana_sen_spanner(dense_graph, 1, random.Random(0))
        assert spanner.num_edges == dense_graph.num_edges
        assert spanner_stretch(dense_graph, spanner) == pytest.approx(1.0)

    def test_spanner_is_subgraph(self, dense_graph):
        spanner = baswana_sen_spanner(dense_graph, 3, random.Random(2))
        for u, v, w in spanner.edges():
            assert dense_graph.has_edge(u, v)
            assert dense_graph.weight(u, v) == w

    def test_invalid_k(self, dense_graph):
        with pytest.raises(ValueError):
            greedy_spanner(dense_graph, 0)
        with pytest.raises(ValueError):
            baswana_sen_spanner(dense_graph, 0)

    def test_spanner_preserves_connectivity(self, dense_graph):
        spanner = baswana_sen_spanner(dense_graph, 4, random.Random(9))
        for u in dense_graph.nodes()[:5]:
            dist, _ = dijkstra(spanner, u)
            assert len(dist) == dense_graph.num_nodes
