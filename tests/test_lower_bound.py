"""Tests for the Figure 1 lower-bound gadget."""

import pytest

from repro.graphs import build_figure1_graph, hop_diameter


class TestFigure1Construction:
    def test_node_counts(self):
        inst = build_figure1_graph(h=4, sigma=3)
        assert len(inst.receivers) == 4
        assert len(inst.attachments) == 4
        assert len(inst.sources) == 12
        assert inst.graph.num_nodes == 4 + 4 + 12

    def test_bottleneck_is_cut_edge(self):
        inst = build_figure1_graph(h=3, sigma=2)
        g = inst.graph.copy()
        u, v = inst.bottleneck
        g.remove_edge(u, v)
        comps = {frozenset(c) for c in g.connected_components()}
        # Removing the bottleneck separates all receivers from all sources.
        receiver_side = next(c for c in comps if inst.receivers[0] in c)
        assert not any(s in receiver_side for s in inst.sources)

    def test_weights_grow_geometrically(self):
        inst = build_figure1_graph(h=3, sigma=1, base=4)
        w1 = inst.graph.weight("v1", "s1_1")
        w2 = inst.graph.weight("v2", "s2_1")
        w3 = inst.graph.weight("v3", "s3_1")
        assert w2 == 4 * w1
        assert w3 == 4 * w2

    def test_required_values(self):
        inst = build_figure1_graph(h=5, sigma=4)
        assert inst.required_values_over_bottleneck() == 20

    def test_hop_budget_reaches_all_sources(self):
        inst = build_figure1_graph(h=3, sigma=2)
        assert inst.detection_hop_budget >= hop_diameter(inst.graph) - 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            build_figure1_graph(0, 3)
        with pytest.raises(ValueError):
            build_figure1_graph(3, 0)

    def test_connected(self):
        inst = build_figure1_graph(h=4, sigma=2)
        assert inst.graph.is_connected()
