"""Columnar batch-query kernel: identity, fallback, stats, cache bounds.

The kernel's contract is strict: whatever the probing strategy, answers are
list-for-list identical to the per-pair dict path — across workload shapes,
input orderings, duplicate pairs, artifact formats, and deployment shapes
(local and sharded).  These tests pin that contract, plus the satellites
that ride along: the bounded pivot-row LRU and the numpy-optional twin
paths.
"""

import dataclasses
import os

import pytest

from repro import graphs
from repro.routing import tables as tables_module
from repro.serving import (
    BuildConfig,
    CacheConfig,
    QUERY_KERNELS,
    ServingConfig,
    make_workload,
    open_service,
    resolve_query_kernel,
)

WORKLOAD_SHAPES = ("uniform", "zipf", "locality", "bursty")


@pytest.fixture(scope="module")
def kernel_graph():
    return graphs.erdos_renyi_graph(70, 0.1, graphs.uniform_weights(1, 20),
                                    seed=5)


@pytest.fixture(scope="module")
def artifact_path(kernel_graph, tmp_path_factory):
    """One format-2 artifact every test serves from."""
    path = str(tmp_path_factory.mktemp("kernel") / "hierarchy.artifact")
    config = ServingConfig(artifact_path=path,
                           build=BuildConfig(k=3, seed=5),
                           cache=CacheConfig(capacity=0))
    open_service(config, graph=kernel_graph).close()
    return path


def open_with(artifact_path, kernel, **overrides):
    config = ServingConfig(artifact_path=artifact_path,
                           build=BuildConfig(k=3, seed=5),
                           cache=CacheConfig(capacity=0),
                           kernel=kernel)
    if overrides:
        config = dataclasses.replace(config, **overrides)
    return open_service(config)


class TestKernelIdentity:
    @pytest.mark.parametrize("shape", WORKLOAD_SHAPES)
    def test_distance_batch_matches_dict_path(self, artifact_path,
                                              kernel_graph, shape):
        pairs = make_workload(shape, kernel_graph, 400, seed=9).pairs
        with open_with(artifact_path, "dict") as baseline, \
                open_with(artifact_path, "columnar") as columnar:
            assert baseline.query_stats().extra["kernel_active"] == "dict"
            assert columnar.query_stats().extra["kernel_active"] == "columnar"
            assert (baseline.distance_batch(pairs)
                    == columnar.distance_batch(pairs))

    @pytest.mark.parametrize("shape", WORKLOAD_SHAPES)
    def test_route_batch_matches_dict_path(self, artifact_path,
                                           kernel_graph, shape):
        pairs = make_workload(shape, kernel_graph, 150, seed=3).pairs
        with open_with(artifact_path, "dict") as baseline, \
                open_with(artifact_path, "columnar") as columnar:
            assert (baseline.route_batch(pairs)
                    == columnar.route_batch(pairs))

    def test_unsorted_duplicate_and_equal_pairs(self, artifact_path,
                                                kernel_graph):
        nodes = kernel_graph.nodes()
        # Deliberately adversarial ordering: descending sources, duplicated
        # pairs scattered, self-pairs interleaved.
        pairs = [(nodes[i % len(nodes)], nodes[(i * 7 + 3) % len(nodes)])
                 for i in range(200)]
        pairs = sorted(pairs, key=repr, reverse=True)
        pairs += pairs[::4] + [(nodes[0], nodes[0]), (nodes[5], nodes[5])]
        with open_with(artifact_path, "dict") as baseline, \
                open_with(artifact_path, "columnar") as columnar:
            assert (baseline.distance_batch(pairs)
                    == columnar.distance_batch(pairs))
            assert baseline.route_batch(pairs) == columnar.route_batch(pairs)

    def test_self_pairs_are_zero_and_delivered(self, artifact_path,
                                               kernel_graph):
        nodes = kernel_graph.nodes()[:10]
        pairs = [(v, v) for v in nodes]
        with open_with(artifact_path, "columnar") as service:
            assert service.distance_batch(pairs) == [0.0] * len(pairs)
            for trace in service.route_batch(pairs):
                assert trace.delivered and trace.path == [trace.source]

    def test_unknown_node_raises_both_kernels(self, artifact_path,
                                              kernel_graph):
        pairs = [(kernel_graph.nodes()[0], "no-such-node")]
        for kernel in ("dict", "columnar"):
            with open_with(artifact_path, kernel) as service:
                with pytest.raises(ValueError, match="no-such-node"):
                    service.distance_batch(pairs)


class TestKernelSelection:
    def test_registry_names(self):
        assert set(QUERY_KERNELS.names()) >= {"dict", "columnar", "auto"}

    def test_auto_resolves_columnar_on_v2(self, artifact_path):
        with open_with(artifact_path, "auto") as service:
            assert service.query_stats().extra["kernel_active"] == "columnar"
            assert resolve_query_kernel("auto", service.hierarchy) \
                == "columnar"

    def test_unknown_kernel_rejected(self, artifact_path):
        with pytest.raises(ValueError, match="query kernel"):
            open_with(artifact_path, "vectorised")

    def test_hierarchy_rejects_unknown_selector(self, artifact_path):
        with open_with(artifact_path, "auto") as service:
            with pytest.raises(ValueError, match="unknown query kernel"):
                service.hierarchy.distance_batch([], kernel="nope")

    def test_v1_artifact_falls_back_to_dict(self, kernel_graph, tmp_path,
                                            artifact_path):
        v1_path = str(tmp_path / "hierarchy_v1.artifact")
        v1_config = ServingConfig(artifact_path=v1_path,
                                  build=BuildConfig(k=3, seed=5,
                                                    artifact_format=1),
                                  cache=CacheConfig(capacity=0),
                                  kernel="columnar")
        open_service(v1_config, graph=kernel_graph).close()
        pairs = make_workload("zipf", kernel_graph, 200, seed=1).pairs
        with open_service(v1_config) as v1_service, \
                open_with(artifact_path, "columnar") as v2_service:
            # Requesting columnar on a v1 pickle load degrades gracefully —
            # no record tables to scan — and answers stay identical.
            assert v1_service.query_stats().extra["kernel_active"] == "dict"
            assert (v1_service.distance_batch(pairs)
                    == v2_service.distance_batch(pairs))

    def test_in_memory_build_falls_back_to_dict(self, kernel_graph):
        config = ServingConfig(build=BuildConfig(k=3, seed=5),
                               cache=CacheConfig(capacity=0),
                               kernel="columnar")
        with open_service(config, graph=kernel_graph) as service:
            assert service.query_stats().extra["kernel_active"] == "dict"


class TestKernelStats:
    def test_group_stats_and_madvise_reported(self, artifact_path,
                                              kernel_graph):
        pairs = make_workload("uniform", kernel_graph, 120, seed=2).pairs
        with open_with(artifact_path, "columnar") as service:
            service.distance_batch(pairs)
            extra = service.query_stats().extra
            stats = extra["kernel_stats"]
            assert stats["batches"] >= 1
            assert stats["pairs"] >= len(set(pairs))
            # Grouping by source can never exceed the pair count.
            assert 1 <= stats["groups"] <= stats["pairs"]
            assert stats["bunch_rows_decoded"] >= 1
            assert extra["kernel_requested"] == "columnar"
            # madvise hints are best-effort; when the platform applied them
            # the record sections are listed.
            if hasattr(os, "posix_fadvise"):  # any modern POSIX
                assert "madvise_sections" in extra


class TestShardedKernel:
    def test_sharded_columnar_matches_local_dict(self, artifact_path,
                                                 kernel_graph):
        pairs = make_workload("bursty", kernel_graph, 200, seed=4).pairs
        sharded_config = ServingConfig(artifact_path=artifact_path,
                                       build=BuildConfig(k=3, seed=5),
                                       cache=CacheConfig(capacity=0),
                                       workers=2, kernel="columnar")
        with open_with(artifact_path, "dict") as baseline, \
                open_service(sharded_config) as sharded:
            expected_distances = baseline.distance_batch(pairs)
            expected_routes = baseline.route_batch(pairs)
            assert sharded.distance_batch(pairs) == expected_distances
            assert sharded.route_batch(pairs) == expected_routes
            merged = sharded.query_stats()
            assert merged.extra["kernel_active"] == "columnar"
            # Additive merge: the per-worker kernel counters sum.
            assert merged.extra["kernel_stats"]["pairs"] >= len(set(pairs))


class TestPivotRowCacheBound:
    def test_lru_bound_and_evictions(self, artifact_path, kernel_graph):
        pairs = make_workload("uniform", kernel_graph, 300, seed=6).pairs
        with open_with(artifact_path, "dict") as service:
            hierarchy = service.hierarchy
            hierarchy.set_pivot_row_cache_cap(8)
            service.distance_batch(pairs)
            info = hierarchy.pivot_row_cache_info()
            assert info["capacity"] == 8
            assert info["size"] <= 8
            assert info["evictions"] > 0
            assert info["misses"] > 0
            assert service.query_stats().extra["pivot_row_cache"] == info

    def test_cap_zero_disables_cache_without_changing_answers(
            self, artifact_path, kernel_graph):
        pairs = make_workload("zipf", kernel_graph, 200, seed=8).pairs
        with open_with(artifact_path, "dict") as baseline:
            expected = baseline.distance_batch(pairs)
        uncached = open_with(artifact_path, "dict",
                             cache=CacheConfig(capacity=0,
                                               pivot_cache_cap=0))
        with uncached as service:
            assert service.distance_batch(pairs) == expected
            info = service.hierarchy.pivot_row_cache_info()
            assert info["capacity"] == 0 and info["size"] == 0
            assert info["hits"] == 0

    def test_config_cap_applies_and_resize_trims(self, artifact_path,
                                                 kernel_graph):
        capped = open_with(artifact_path, "dict",
                           cache=CacheConfig(capacity=0, pivot_cache_cap=5))
        pairs = make_workload("uniform", kernel_graph, 100, seed=7).pairs
        with capped as service:
            service.distance_batch(pairs)
            hierarchy = service.hierarchy
            assert hierarchy.pivot_row_cache_info()["capacity"] == 5
            assert hierarchy.pivot_row_cache_info()["size"] <= 5
            before = hierarchy.pivot_row_cache_info()["evictions"]
            hierarchy.set_pivot_row_cache_cap(2)
            info = hierarchy.pivot_row_cache_info()
            assert info["size"] <= 2 and info["evictions"] >= before

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError, match="pivot_cache_cap"):
            CacheConfig(pivot_cache_cap=-1)


class TestNumpyOptional:
    def test_stdlib_twin_is_identical(self, artifact_path, kernel_graph,
                                      monkeypatch):
        """Force the stdlib struct/array path and re-check identity.

        CI additionally runs this whole file with ``REPRO_NO_NUMPY=1`` in
        an environment without numpy installed; this in-process variant
        keeps the twin-path contract covered on every run.
        """
        pairs = make_workload("zipf", kernel_graph, 250, seed=12).pairs
        with open_with(artifact_path, "columnar") as service:
            expected = service.distance_batch(pairs)
            expected_routes = service.route_batch(pairs[:80])
        monkeypatch.setattr(tables_module, "_np", None)
        with open_with(artifact_path, "columnar") as service:
            assert service.query_stats().extra["kernel_active"] == "columnar"
            assert service.distance_batch(pairs) == expected
            assert service.route_batch(pairs[:80]) == expected_routes

    def test_have_numpy_honours_env_gate(self):
        # The probe result is consistent with the environment the module
        # was imported into.
        if os.environ.get("REPRO_NO_NUMPY"):
            assert tables_module.HAVE_NUMPY is False
        else:
            try:
                import numpy  # noqa: F401
            except ImportError:
                assert tables_module.HAVE_NUMPY is False
            else:
                assert tables_module.HAVE_NUMPY is True
