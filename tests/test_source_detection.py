"""Tests for unweighted (S, h, sigma)-source detection (Lenzen–Peleg)."""

import pytest

from repro import graphs
from repro.core import (
    detect_sources_batched,
    detect_sources_logical,
    expand_with_edge_lengths,
    lemma34_message_cap,
    run_source_detection_simulation,
    solve_pde,
)
from repro.core.source_detection import _map_next_hop
from repro.graphs import WeightedGraph, bfs_hop_distances


def _pairs(result, node):
    return [(e.distance, e.source) for e in result.lists[node]]


class TestLogicalEngine:
    def test_path_all_sources(self, unit_path):
        sources = set(unit_path.nodes())
        result = detect_sources_logical(unit_path, sources, h=3, sigma=2)
        assert _pairs(result, 5) == [(0, 5), (1, 4)]

    def test_respects_hop_budget(self, unit_path):
        result = detect_sources_logical(unit_path, {0}, h=3, sigma=5)
        assert _pairs(result, 3) == [(3, 0)]
        assert _pairs(result, 4) == []

    def test_respects_sigma(self, grid):
        sources = set(grid.nodes())
        result = detect_sources_logical(grid, sources, h=10, sigma=3)
        assert all(len(result.lists[v]) <= 3 for v in grid.nodes())

    def test_lexicographic_tie_break(self):
        g = WeightedGraph.from_edges([(0, 1, 1), (0, 2, 1)])
        result = detect_sources_logical(g, {1, 2}, h=2, sigma=2)
        assert _pairs(result, 0) == [(1, 1), (1, 2)]

    def test_output_matches_bfs_truth(self, grid):
        sources = set(list(grid.nodes())[:4])
        h, sigma = 6, 4
        result = detect_sources_logical(grid, sources, h, sigma)
        for v in grid.nodes():
            expected = []
            for s in sources:
                d = bfs_hop_distances(grid, s).get(v)
                if d is not None and d <= h:
                    expected.append((d, s))
            expected.sort(key=lambda item: (item[0], repr(item[1])))
            assert _pairs(result, v) == expected[:sigma]

    def test_next_hops_are_neighbors(self, grid):
        sources = set(list(grid.nodes())[:3])
        result = detect_sources_logical(grid, sources, h=8, sigma=3)
        for v in grid.nodes():
            for entry in result.lists[v]:
                if entry.source == v:
                    continue
                assert entry.next_hop is not None
                assert grid.has_edge(v, entry.next_hop)

    def test_edge_lengths_respected(self):
        g = WeightedGraph.from_edges([(0, 1, 5), (1, 2, 5)])
        result = detect_sources_logical(g, {0}, h=12, sigma=1,
                                        edge_length=lambda u, v, w: w)
        assert _pairs(result, 2) == [(10, 0)]

    def test_source_not_in_graph_raises(self, unit_path):
        with pytest.raises(ValueError):
            detect_sources_logical(unit_path, {99}, h=3, sigma=2)

    def test_invalid_parameters(self, unit_path):
        with pytest.raises(ValueError):
            detect_sources_logical(unit_path, {0}, h=-1, sigma=2)
        with pytest.raises(ValueError):
            detect_sources_logical(unit_path, {0}, h=3, sigma=-1)

    def test_analytic_round_bound(self, unit_path):
        result = detect_sources_logical(unit_path, {0}, h=4, sigma=3)
        assert result.metrics.rounds == 4 + 3
        assert not result.metrics.measured


class TestSimulatedEngine:
    def test_matches_logical_unweighted(self, grid):
        sources = set(list(grid.nodes())[:5])
        h, sigma = 6, 3
        logical = detect_sources_logical(grid, sources, h, sigma)
        simulated = run_source_detection_simulation(grid, sources, h, sigma)
        for v in grid.nodes():
            assert _pairs(simulated, v) == _pairs(logical, v)

    def test_matches_logical_with_edge_lengths(self):
        g = graphs.erdos_renyi_graph(14, 0.25, graphs.uniform_weights(1, 4), seed=6)
        sources = set(list(g.nodes())[:4])
        h, sigma = 8, 3
        length = lambda u, v, w: w
        logical = detect_sources_logical(g, sources, h, sigma, edge_length=length)
        simulated = run_source_detection_simulation(g, sources, h, sigma,
                                                    edge_length=length)
        for v in g.nodes():
            assert _pairs(simulated, v) == _pairs(logical, v)

    def test_round_budget(self, grid):
        sources = set(list(grid.nodes())[:3])
        h, sigma = 5, 2
        simulated = run_source_detection_simulation(grid, sources, h, sigma)
        assert simulated.metrics.rounds <= h + sigma

    def test_lemma34_message_cap_respected(self, grid):
        sources = set(grid.nodes())
        h, sigma = 8, 3
        simulated = run_source_detection_simulation(grid, sources, h, sigma,
                                                    message_cap=True)
        cap = lemma34_message_cap(sigma)
        assert simulated.metrics.max_broadcasts() <= cap

    def test_message_cap_value(self):
        assert lemma34_message_cap(1) == 1
        assert lemma34_message_cap(4) == 10

    def test_next_hops_map_to_real_neighbors(self):
        g = WeightedGraph.from_edges([(0, 1, 3), (1, 2, 2)])
        simulated = run_source_detection_simulation(
            g, {0}, h=8, sigma=1, edge_length=lambda u, v, w: w)
        entry = simulated.lists[2][0]
        assert entry.source == 0
        assert entry.next_hop == 1


class TestBoundarySemantics:
    """The documented h=0 / sigma=0 boundaries (satellite of Definition 2.1):
    detection engines accept the degenerate instances, the PDE solver rejects
    them because the Definition 2.2 guarantees are vacuous there."""

    @pytest.mark.parametrize("engine", [detect_sources_logical,
                                        detect_sources_batched])
    def test_h_zero_only_sources_detect_themselves(self, unit_path, engine):
        result = engine(unit_path, {0, 4}, h=0, sigma=3)
        assert [(e.distance, e.source) for e in result.lists[0]] == [(0, 0)]
        assert [(e.distance, e.source) for e in result.lists[4]] == [(0, 4)]
        assert all(result.lists[v] == [] for v in unit_path.nodes()
                   if v not in (0, 4))

    @pytest.mark.parametrize("engine", [detect_sources_logical,
                                        detect_sources_batched])
    def test_sigma_zero_all_lists_empty(self, unit_path, engine):
        result = engine(unit_path, {0, 4}, h=3, sigma=0)
        assert all(result.lists[v] == [] for v in unit_path.nodes())

    def test_solve_pde_rejects_degenerate_boundaries(self, unit_path):
        with pytest.raises(ValueError):
            solve_pde(unit_path, [0], h=0, sigma=2, epsilon=0.5)
        with pytest.raises(ValueError):
            solve_pde(unit_path, [0], h=3, sigma=0, epsilon=0.5)

    def test_solve_pde_accepts_minimal_boundaries(self, unit_path):
        pde = solve_pde(unit_path, [0], h=1, sigma=1, epsilon=0.5)
        assert pde.estimate(1, 0) >= 1.0


class TestNextHopMapping:
    def test_tuple_node_ids_round_trip(self):
        # Tuple-valued node IDs must round-trip through the virtual-node
        # names that embed their repr.
        a, b, c = ("dc", 1), ("dc", 2), ("rack", 1, 3)
        g = WeightedGraph.from_edges([(a, b, 3), (b, c, 2)])
        simulated = run_source_detection_simulation(
            g, {a}, h=8, sigma=1, edge_length=lambda u, v, w: w)
        entry = simulated.lists[c][0]
        assert entry.source == a
        assert entry.next_hop == b
        entry_b = simulated.lists[b][0]
        assert entry_b.next_hop == a

    def test_real_next_hop_passes_through(self, unit_path):
        assert _map_next_hop(unit_path, 3, 2) == 2
        assert _map_next_hop(unit_path, 3, None) is None

    def test_unmappable_virtual_next_hop_raises(self, unit_path):
        # Regression: an inconsistent virtual node used to degrade silently
        # into a None next hop; it must raise a descriptive error instead.
        bogus = ("virt", repr(998), repr(999), 1)
        with pytest.raises(ValueError, match="cannot map virtual next hop"):
            _map_next_hop(unit_path, 3, bogus)


class TestExpansion:
    def test_expansion_sizes(self):
        g = WeightedGraph.from_edges([(0, 1, 3)])
        expanded, real = expand_with_edge_lengths(g, lambda u, v, w: w, cap=10)
        assert real == {0, 1}
        assert expanded.num_nodes == 2 + 2   # two virtual nodes on the edge
        assert expanded.num_edges == 3

    def test_expansion_cap(self):
        g = WeightedGraph.from_edges([(0, 1, 100)])
        expanded, _ = expand_with_edge_lengths(g, lambda u, v, w: w, cap=5)
        assert expanded.num_nodes == 2 + 4

    def test_length_one_edges_untouched(self, unit_path):
        expanded, _ = expand_with_edge_lengths(unit_path, lambda u, v, w: 1, cap=5)
        assert expanded.num_nodes == unit_path.num_nodes
        assert expanded.num_edges == unit_path.num_edges

    def test_invalid_cap(self, unit_path):
        with pytest.raises(ValueError):
            expand_with_edge_lengths(unit_path, lambda u, v, w: 1, cap=0)
