"""Tests for the Theorem 4.5 routing scheme (relabeling, stretch 6k-1+o(1))."""

import pytest

from repro import graphs
from repro.graphs import all_pairs_weighted_distances
from repro.routing import RelabelingRoutingScheme
from repro.routing.stretch import evaluate_distance_estimates, evaluate_routing, sample_pairs


@pytest.fixture(scope="module")
def er_scheme():
    g = graphs.erdos_renyi_graph(30, 0.15, graphs.uniform_weights(1, 60), seed=23)
    scheme = RelabelingRoutingScheme.build(g, k=2, epsilon=0.25, seed=5)
    return g, scheme


@pytest.fixture(scope="module")
def long_range_scheme():
    """A scheme where the detection budget is deliberately small so that the
    long-range (skeleton + spanner) path is exercised."""
    g = graphs.erdos_renyi_graph(36, 0.12, graphs.uniform_weights(1, 80), seed=31)
    scheme = RelabelingRoutingScheme.build(g, k=2, epsilon=0.25, seed=3,
                                           sampling_probability=0.25,
                                           budget_constant=0.5)
    return g, scheme


class TestConstruction:
    def test_invalid_k(self, small_weighted_graph):
        with pytest.raises(ValueError):
            RelabelingRoutingScheme.build(small_weighted_graph, k=0)

    def test_invalid_spanner_method(self, small_weighted_graph):
        with pytest.raises(ValueError):
            RelabelingRoutingScheme.build(small_weighted_graph, k=2,
                                          spanner_method="bogus")

    def test_skeleton_nonempty(self, er_scheme):
        _, scheme = er_scheme
        assert len(scheme.skeleton) >= 1

    def test_home_assignment_total(self, er_scheme):
        g, scheme = er_scheme
        assert set(scheme.home) == set(g.nodes())
        assert all(s in scheme.skeleton for s in scheme.home.values())

    def test_skeleton_nodes_homed_at_themselves(self, er_scheme):
        _, scheme = er_scheme
        for s in scheme.skeleton:
            assert scheme.home[s] == s

    def test_build_report_fields(self, er_scheme):
        g, scheme = er_scheme
        report = scheme.build_report()
        assert report.n == g.num_nodes
        assert report.rounds > 0
        assert report.skeleton_size == len(scheme.skeleton)
        assert report.label_bits_max > 0

    def test_metrics_rounds_positive(self, er_scheme):
        _, scheme = er_scheme
        assert scheme.metrics.rounds > 0


class TestLabels:
    def test_label_contains_home_and_constant_words(self, er_scheme):
        g, scheme = er_scheme
        for v in g.nodes():
            label = scheme.label_of(v)
            assert label.get("home") in scheme.skeleton
            # home id + distance + tree label (+ keys + owner): a constant.
            assert label.words() <= 8

    def test_label_distance_nonnegative(self, er_scheme):
        g, scheme = er_scheme
        exact = all_pairs_weighted_distances(g)
        for v in g.nodes():
            label = scheme.label_of(v)
            home = label.get("home")
            assert label.get("dist_home") >= exact[v][home] - 1e-9

    def test_table_sizes_reported(self, er_scheme):
        g, scheme = er_scheme
        for v in list(g.nodes())[:5]:
            table = scheme.table_of(v)
            assert table.words() > 0


class TestRoutingAndDistance:
    def test_all_pairs_delivered_with_bounded_stretch(self, er_scheme):
        g, scheme = er_scheme
        report = evaluate_routing(scheme, g)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= scheme.theoretical_stretch_bound() + 1e-6

    def test_distance_estimates_feasible_and_bounded(self, er_scheme):
        g, scheme = er_scheme
        report = evaluate_distance_estimates(scheme, g)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= scheme.theoretical_stretch_bound() + 1e-6

    def test_self_route(self, er_scheme):
        g, scheme = er_scheme
        v = g.nodes()[0]
        trace = scheme.route(v, v)
        assert trace.delivered and trace.weight == 0.0

    def test_long_range_pairs_exercised(self, long_range_scheme):
        g, scheme = long_range_scheme
        pairs = sample_pairs(g.nodes())
        long_pairs = [(u, v) for u, v in pairs
                      if u != v and not scheme.pde_short.in_list(u, v)]
        assert long_pairs, "expected some pairs to need the long-range path"
        report = evaluate_routing(scheme, g, pairs=long_pairs)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= scheme.theoretical_stretch_bound() + 1e-6

    def test_long_range_distance_estimates(self, long_range_scheme):
        g, scheme = long_range_scheme
        report = evaluate_distance_estimates(scheme, g)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= scheme.theoretical_stretch_bound() + 1e-6

    def test_audit_summary_keys(self, er_scheme):
        _, scheme = er_scheme
        summary = scheme.audit(pairs=None)
        assert {"delivery_rate", "max_stretch", "stretch_bound"} <= set(summary)


class TestMultipleGraphFamilies:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_stretch_bound_across_k(self, k):
        g = graphs.erdos_renyi_graph(24, 0.18, graphs.mixed_scale_weights(1, 900, 0.3),
                                     seed=41)
        scheme = RelabelingRoutingScheme.build(g, k=k, epsilon=0.25, seed=k)
        report = evaluate_routing(scheme, g)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 6 * k - 1 + 1e-6

    def test_tree_topology(self):
        g = graphs.random_tree(26, graphs.uniform_weights(1, 40), seed=6)
        scheme = RelabelingRoutingScheme.build(g, k=2, epsilon=0.25, seed=6)
        report = evaluate_routing(scheme, g)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 11 + 1e-6

    def test_grid_topology(self):
        g = graphs.grid_graph(4, 6, graphs.uniform_weights(1, 25), seed=8)
        scheme = RelabelingRoutingScheme.build(g, k=2, epsilon=0.25, seed=8)
        report = evaluate_routing(scheme, g)
        assert report.delivery_rate == 1.0
        assert report.max_stretch <= 11 + 1e-6
