"""Elastic fleet: chaos recovery, epoch routing, scaling, failure semantics.

The chaos tests SIGKILL a live worker process mid-stream and assert the
fleet's one hard contract: every answer stays list-for-list identical to
single-process serving, with the death and the respawn visible in the
supervisor counters.  The unit tests pin the deterministic pieces — the
epoch table, the config validation, the typed degradation when the
respawn budget runs out — without needing worker processes at all.
"""

import os
import signal
import time

import pytest

from repro import graphs
from repro.serving import (
    FleetConfig,
    FleetError,
    RoutingEpoch,
    RoutingService,
    ServingConfig,
    ShardError,
    ShardedRoutingService,
    make_workload,
    stable_node_hash,
    write_shard_artifacts,
)


@pytest.fixture(scope="module")
def fleet_graph():
    return graphs.erdos_renyi_graph(30, 0.15, graphs.uniform_weights(1, 50),
                                    seed=17)


@pytest.fixture(scope="module")
def artifact_path(fleet_graph, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("fleet") / "hierarchy.artifact")
    RoutingService.build_or_load(path, graph=fleet_graph, k=3, seed=4)
    return path


@pytest.fixture(scope="module")
def reference_service(artifact_path):
    return RoutingService.load(artifact_path)


def open_fleet(artifact_path, num_workers=3, sub_artifacts=False, **knobs):
    knobs.setdefault("heartbeat_interval", 0.05)
    knobs.setdefault("respawn_limit", 5)
    sub_paths = None
    if sub_artifacts:
        sub_paths = write_shard_artifacts(artifact_path, num_workers)
    return ShardedRoutingService(
        artifact_path, num_workers=num_workers, partitioner="hash_source",
        sub_artifact_paths=sub_paths, fleet=FleetConfig(**knobs))


def kill_worker(service, worker_id):
    """SIGKILL one live worker process, as the OOM killer would."""
    process = service._workers[worker_id].process
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=10.0)
    assert not process.is_alive()


def wait_for(predicate, deadline=20.0, message="condition"):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError(f"timed out waiting for {message}")


class TestRoutingEpoch:
    NODES = list(range(40)) + ["core0", "pod1-edge0-host2"]

    def test_base_slot_is_source_hash(self):
        table = RoutingEpoch(1, 4, {}, (0, 1, 2, 3))
        for node in self.NODES:
            assert table.slot_of(node) == stable_node_hash(node) % 4

    def test_override_redirects(self):
        moved = self.NODES[0]
        table = RoutingEpoch(2, 4, {moved: 3}, (0, 1, 2, 3))
        assert table.slot_of(moved) == 3
        untouched = self.NODES[1]
        assert table.slot_of(untouched) == stable_node_hash(untouched) % 4

    def test_dead_slot_falls_back_deterministically(self):
        full = RoutingEpoch(1, 4, {}, (0, 1, 2, 3))
        holed = RoutingEpoch(2, 4, {}, (0, 2, 3))
        for node in self.NODES:
            slot = holed.slot_of(node)
            assert slot in (0, 2, 3)
            if full.slot_of(node) != 1:
                # Slots that were never on the dead worker do not move.
                assert slot == full.slot_of(node)
            # Deterministic: same table, same answer.
            assert holed.slot_of(node) == slot

    def test_override_to_dead_slot_falls_back(self):
        table = RoutingEpoch(3, 4, {self.NODES[0]: 1}, (0, 2))
        assert table.slot_of(self.NODES[0]) in (0, 2)

    def test_empty_routable_raises_typed_error(self):
        table = RoutingEpoch(4, 4, {}, ())
        with pytest.raises(FleetError, match="no routable workers"):
            table.slot_of(self.NODES[0])


class TestConfigValidation:
    def test_fleet_config_defaults_valid(self):
        config = FleetConfig()
        assert config.to_dict()["respawn_limit"] == 3

    @pytest.mark.parametrize("bad", [
        {"min_workers": 0},
        {"max_workers": 1, "min_workers": 2},
        {"heartbeat_interval": 0.0},
        {"respawn_limit": -1},
        {"hang_timeout": 0.0},
        {"scale_up_depth": 0.2, "scale_down_depth": 0.4},
        {"sustain_beats": 0},
        {"feedback_every": 0},
        {"migrate_fraction": 0.0},
        {"migrate_fraction": 1.5},
        {"min_window": 0},
    ])
    def test_fleet_config_rejects(self, bad):
        with pytest.raises(ValueError):
            FleetConfig(**bad)

    def test_serving_config_fleet_needs_workers(self):
        with pytest.raises(ValueError, match="workers >= 2"):
            ServingConfig(workers=1, fleet=True)

    def test_serving_config_bounds_need_fleet(self):
        with pytest.raises(ValueError, match="only apply with"):
            ServingConfig(workers=2, min_workers=1)
        with pytest.raises(ValueError, match="only apply with"):
            ServingConfig(workers=2, max_workers=4)

    def test_serving_config_bounds_validated(self):
        with pytest.raises(ValueError, match="min_workers"):
            ServingConfig(workers=2, fleet=True, min_workers=3)
        with pytest.raises(ValueError, match="max_workers"):
            ServingConfig(workers=4, fleet=True, min_workers=2,
                          max_workers=1)

    def test_sharded_rejects_fleet_misuse(self, artifact_path):
        with pytest.raises(ValueError, match="num_workers >= 2"):
            ShardedRoutingService(artifact_path, num_workers=1,
                                  partitioner="hash_source", fleet=True)
        with pytest.raises(ValueError, match="partition by source"):
            ShardedRoutingService(artifact_path, num_workers=2,
                                  partitioner="round_robin", fleet=True)
        with pytest.raises(ValueError, match="FleetConfig"):
            ShardedRoutingService(artifact_path, num_workers=2,
                                  partitioner="hash_source", fleet="yes")

    def test_min_workers_capped_by_initial_count(self, artifact_path):
        with pytest.raises(ValueError, match="initial"):
            ShardedRoutingService(artifact_path, num_workers=2,
                                  partitioner="hash_source",
                                  fleet=FleetConfig(min_workers=3,
                                                    max_workers=5))


class TestPendingRequestIds:
    """Satellite: a latched ShardError names the in-flight batches."""

    def test_latched_error_carries_pending_request_ids(self, fleet_graph,
                                                       artifact_path):
        sharded = ShardedRoutingService(artifact_path, num_workers=2).start()
        nodes = fleet_graph.nodes()
        with pytest.raises(ShardError) as excinfo:
            sharded.route_batch([(nodes[0], "no-such-node")])
        assert excinfo.value.pending_request_ids != ()
        assert all(isinstance(rid, int)
                   for rid in excinfo.value.pending_request_ids)

    def test_default_is_empty(self):
        assert ShardError("boom").pending_request_ids == ()


class TestChaosRecovery:
    @pytest.mark.parametrize("shape", ["uniform", "zipf", "bursty"])
    def test_kill_mid_stream_keeps_answers_identical(self, fleet_graph,
                                                     artifact_path,
                                                     reference_service,
                                                     shape):
        workload = make_workload(shape, fleet_graph, 240, seed=9)
        expected = reference_service.route_batch(workload.pairs)
        batches = [workload.pairs[i:i + 40]
                   for i in range(0, len(workload.pairs), 40)]
        with open_fleet(artifact_path, num_workers=3) as sharded:
            routes = []
            for number, batch in enumerate(batches):
                if number == 2:
                    kill_worker(sharded, 1)
                routes.extend(sharded.route_batch(batch))
            wait_for(lambda: sharded._fleet.respawns >= 1,
                     message="respawn counter")
            status = sharded._fleet.status()
        assert [t.path for t in routes] == [t.path for t in expected]
        assert [t.weight for t in routes] == [t.weight for t in expected]
        assert status["worker_deaths"] >= 1
        assert status["respawns"] >= 1
        assert status["epoch"] >= 2  # death + ready each publish

    def test_kill_with_sub_artifacts_uses_cover(self, fleet_graph,
                                                artifact_path,
                                                reference_service):
        """Sliced workers answer a dead sibling's sources from the cover."""
        workload = make_workload("zipf", fleet_graph, 200, seed=5)
        expected = reference_service.distance_batch(workload.pairs)
        with open_fleet(artifact_path, num_workers=3,
                        sub_artifacts=True) as sharded:
            first = sharded.distance_batch(workload.pairs[:100])
            kill_worker(sharded, 0)
            second = sharded.distance_batch(workload.pairs[100:])
            wait_for(lambda: sharded._fleet.respawns >= 1,
                     message="respawn counter")
            merged = sharded.merged_stats()
        assert first + second == expected
        assert merged.extra["fleet"]["worker_deaths"] >= 1
        # Siblings answered out-of-slice queries through the cover path.
        assert merged.extra.get("cover_queries", 0) > 0

    def test_respawned_slice_regenerated_when_file_vanishes(
            self, fleet_graph, artifact_path, reference_service):
        workload = make_workload("uniform", fleet_graph, 120, seed=3)
        expected = reference_service.distance_batch(workload.pairs)
        with open_fleet(artifact_path, num_workers=2,
                        sub_artifacts=True) as sharded:
            os.remove(sharded.sub_artifact_paths[1])
            kill_worker(sharded, 1)
            answers = sharded.distance_batch(workload.pairs)
            wait_for(lambda: sharded._fleet.respawns >= 1,
                     message="respawn after slice regeneration")
            assert os.path.exists(sharded.sub_artifact_paths[1])
        assert answers == expected

    def test_budget_exhaustion_degrades_to_fleet_error(self, fleet_graph,
                                                       artifact_path):
        nodes = fleet_graph.nodes()
        pairs = [(nodes[i % len(nodes)], nodes[(i * 7 + 1) % len(nodes)])
                 for i in range(40)]
        with open_fleet(artifact_path, num_workers=2,
                        respawn_limit=0) as sharded:
            sharded.route_batch(pairs)  # healthy first
            kill_worker(sharded, 0)
            deadline = time.monotonic() + 20.0
            with pytest.raises(FleetError, match="respawn budget"):
                while time.monotonic() < deadline:
                    sharded.route_batch(pairs)
            assert not sharded.is_running

    def test_fleet_error_is_a_shard_error(self):
        error = FleetError("out of budget")
        assert isinstance(error, ShardError)
        assert error.pending_request_ids == ()

    def test_telemetry_counters_exported(self, fleet_graph, artifact_path):
        workload = make_workload("uniform", fleet_graph, 120, seed=11)
        sub_paths = write_shard_artifacts(artifact_path, 2)
        with ShardedRoutingService(
                artifact_path, num_workers=2, partitioner="hash_source",
                sub_artifact_paths=sub_paths, telemetry=True,
                fleet=FleetConfig(heartbeat_interval=0.05,
                                  respawn_limit=5)) as sharded:
            sharded.route_batch(workload.pairs[:60])
            kill_worker(sharded, 1)
            sharded.route_batch(workload.pairs[60:])
            wait_for(lambda: sharded._fleet.respawns >= 1,
                     message="respawn counter")
            merged = sharded.merged_stats()
        telemetry = merged.extra["telemetry"]
        assert telemetry["fleet_worker_deaths"]["value"] >= 1
        assert telemetry["fleet_respawns"]["value"] >= 1
        assert telemetry["respawn"]["type"] == "histogram"
        assert telemetry["respawn"]["count"] >= 1
        assert telemetry["fleet_queue_depth"]["type"] == "gauge"


class TestElasticScaling:
    def test_scale_down_then_up_preserves_answers(self, fleet_graph,
                                                  artifact_path,
                                                  reference_service):
        """Drive the scaling transitions directly (deterministically)."""
        workload = make_workload("uniform", fleet_graph, 150, seed=13)
        expected = reference_service.distance_batch(workload.pairs)
        with open_fleet(artifact_path, num_workers=3,
                        min_workers=1, max_workers=3) as sharded:
            fleet = sharded._fleet
            first = sharded.distance_batch(workload.pairs[:50])

            fleet._scale_down(sharded)
            states = [h.state for h in sharded._workers]
            assert states.count("parked") == 1
            assert fleet.scale_downs == 1
            wait_for(lambda: sharded._workers[2].final_stats is not None,
                     message="parked worker's bye")
            second = sharded.distance_batch(workload.pairs[50:100])

            fleet._scale_up(sharded)
            fleet._run_respawns(sharded)
            wait_for(lambda: fleet.scale_ups >= 1, message="unpark")
            assert all(h.state == "alive" for h in sharded._workers)
            third = sharded.distance_batch(workload.pairs[100:])
            status = fleet.status()
        assert first + second + third == expected
        assert status["scale_downs"] == 1 and status["scale_ups"] == 1

    def test_dynamic_slot_beyond_base_count(self, fleet_graph,
                                            artifact_path,
                                            reference_service):
        """A scale-up past the initial count spawns a fresh dynamic slot."""
        workload = make_workload("zipf", fleet_graph, 150, seed=21)
        expected = reference_service.distance_batch(workload.pairs)
        with open_fleet(artifact_path, num_workers=2,
                        max_workers=3) as sharded:
            fleet = sharded._fleet
            first = sharded.distance_batch(workload.pairs[:75])
            fleet._scale_up(sharded)
            fleet._run_respawns(sharded)
            wait_for(lambda: fleet.scale_ups >= 1, message="dynamic spawn")
            assert len(sharded._workers) == 3
            assert sharded._workers[2].state == "alive"
            second = sharded.distance_batch(workload.pairs[75:])
            status = fleet.status()
        assert first + second == expected
        # The fresh slot was seeded with cold sources via overrides.
        assert status["overrides"] >= 0
        assert status["routable"] == [0, 1, 2]
