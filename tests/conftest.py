"""Shared fixtures: small, fast graphs reused across the test suite."""

import pytest

from repro import graphs


@pytest.fixture(scope="session")
def small_weighted_graph():
    """A connected ER graph with moderate weights (20 nodes)."""
    return graphs.erdos_renyi_graph(20, 0.2, graphs.uniform_weights(1, 50), seed=11)


@pytest.fixture(scope="session")
def mixed_scale_graph():
    """A graph where hop-shortest and weight-shortest paths differ a lot."""
    return graphs.erdos_renyi_graph(22, 0.18, graphs.mixed_scale_weights(1, 5000, 0.3),
                                    seed=7)


@pytest.fixture(scope="session")
def unit_path():
    return graphs.path_graph(10, graphs.unit_weights(), seed=0)


@pytest.fixture(scope="session")
def weighted_path():
    return graphs.path_graph(12, graphs.uniform_weights(1, 30), seed=3)


@pytest.fixture(scope="session")
def grid():
    return graphs.grid_graph(4, 5, graphs.uniform_weights(1, 9), seed=5)


@pytest.fixture(scope="session")
def heavy_tree():
    return graphs.random_tree(18, graphs.heavy_tailed_weights(10 ** 4), seed=2)


@pytest.fixture(scope="session")
def graph_zoo():
    """A dictionary of diverse small graphs for integration-style tests."""
    return {
        "er": graphs.erdos_renyi_graph(18, 0.2, graphs.uniform_weights(1, 40), seed=1),
        "grid": graphs.grid_graph(3, 5, graphs.uniform_weights(1, 12), seed=1),
        "tree": graphs.random_tree(16, graphs.uniform_weights(1, 25), seed=1),
        "cycle": graphs.cycle_graph(14, graphs.mixed_scale_weights(1, 500, 0.25), seed=1),
        "clique": graphs.complete_graph(10, graphs.mixed_scale_weights(1, 1000, 0.4), seed=1),
    }
