"""Seeded property tests for the PDE guarantees of Definition 2.2.

For every engine and every generator family the two defining properties of
``(1+eps)``-approximate ``(S, h, sigma)``-estimation must hold:

* soundness — ``wd'(v, s) >= wd(v, s)`` for *all* ``v`` and detected ``s``
  (estimates never undershoot, Theorem 3.3 property 1);
* completeness — ``wd'(v, s) <= (1+eps) * wd(v, s)`` whenever the minimum-hop
  shortest ``v``-``s`` path has at most ``h`` hops, provided ``sigma >= |S|``
  so no entry can be crowded out of the list (Theorem 3.3 property 2).

The CONGEST simulator is exercised on the smaller instances only (it
materialises the virtual graphs level by level and is orders of magnitude
slower than the centralized engines).
"""

import random

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.graphs import all_pairs_weighted_distances, dijkstra_with_hops

ENGINES = ["logical", "batched", "simulate"]

#: (name, factory) pairs covering the generator suite.
GENERATOR_CASES = [
    ("er", lambda seed: graphs.erdos_renyi_graph(
        14, 0.25, graphs.uniform_weights(1, 40), seed=seed)),
    ("grid", lambda seed: graphs.grid_graph(
        3, 5, graphs.uniform_weights(1, 12), seed=seed)),
    ("tree", lambda seed: graphs.random_tree(
        14, graphs.uniform_weights(1, 25), seed=seed)),
    ("cycle", lambda seed: graphs.cycle_graph(
        12, graphs.mixed_scale_weights(1, 500, 0.25), seed=seed)),
    ("clique", lambda seed: graphs.complete_graph(
        9, graphs.mixed_scale_weights(1, 1000, 0.4), seed=seed)),
]

SEEDS = [1, 2, 3]


def _check_guarantees(graph, sources, h, epsilon, engine):
    """Assert both Definition 2.2 properties with sigma >= |S|."""
    source_set = set(sources)
    pde = solve_pde(graph, source_set, h=h, sigma=len(source_set),
                    epsilon=epsilon, engine=engine, store_levels=False)
    exact = all_pairs_weighted_distances(graph)
    for v in graph.nodes():
        _, hops = dijkstra_with_hops(graph, v)
        for s in source_set:
            est = pde.estimate(v, s)
            # Soundness: wd'(v, s) >= wd(v, s) always (inf trivially passes).
            assert est >= exact[v][s] - 1e-9, (v, s, est, exact[v][s])
            # Completeness: within the hop budget the estimate exists and is
            # a (1+eps)-approximation.
            if hops.get(s, float("inf")) <= h:
                assert est <= (1 + epsilon) * exact[v][s] + 1e-6, \
                    (v, s, est, exact[v][s])


class TestGuaranteesAcrossGenerators:
    @pytest.mark.parametrize("engine", ["logical", "batched"])
    @pytest.mark.parametrize("name,factory", GENERATOR_CASES,
                             ids=[c[0] for c in GENERATOR_CASES])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_centralized_engines(self, name, factory, seed, engine):
        g = factory(seed)
        rng = random.Random(seed)
        nodes = g.nodes()
        sources = rng.sample(nodes, max(2, len(nodes) // 3))
        h = rng.randint(1, max(2, g.num_nodes // 2))
        epsilon = rng.choice([0.25, 0.5, 1.0])
        _check_guarantees(g, sources, h, epsilon, engine)

    @pytest.mark.parametrize("name,factory", GENERATOR_CASES,
                             ids=[c[0] for c in GENERATOR_CASES])
    def test_simulated_engine(self, name, factory):
        g = factory(1)
        rng = random.Random(99)
        sources = rng.sample(g.nodes(), 3)
        _check_guarantees(g, sources, h=3, epsilon=0.5, engine="simulate")


class TestGuaranteesFullInstance:
    """S = V, sigma = n, h = n: every pair is covered (the Theorem 4.1 regime)."""

    @pytest.mark.parametrize("engine", ["logical", "batched"])
    def test_all_pairs_regime(self, small_weighted_graph, engine):
        g = small_weighted_graph
        _check_guarantees(g, g.nodes(), h=g.num_nodes, epsilon=0.25,
                          engine=engine)

    @pytest.mark.parametrize("engine", ["logical", "batched"])
    def test_mixed_scale_weights(self, mixed_scale_graph, engine):
        g = mixed_scale_graph
        _check_guarantees(g, g.nodes(), h=g.num_nodes, epsilon=0.5,
                          engine=engine)
