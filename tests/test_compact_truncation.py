"""Boundary behaviour of the Corollary 4.14 truncation-level choice."""

import math

import pytest

from repro import graphs
from repro.routing import build_compact_routing, choose_truncation_level


class TestClampRange:
    """l0 must always land in ``[floor(k/2) + 1, k - 1]`` (Theorem 4.13)."""

    @pytest.mark.parametrize("k", range(3, 9))
    @pytest.mark.parametrize("diameter", [1, 2, 10, 10 ** 3, 10 ** 9])
    def test_within_clamp_range(self, k, diameter):
        n = 1000
        l0 = choose_truncation_level(n, k, diameter)
        assert math.floor(k / 2) + 1 <= l0 <= k - 1

    @pytest.mark.parametrize("k", range(3, 9))
    def test_tiny_diameter_hits_lower_clamp(self, k):
        # D = 1 gives raw ~ k/2 + small, which clamps to floor(k/2) + 1.
        assert choose_truncation_level(10 ** 6, k, 1) == math.floor(k / 2) + 1

    @pytest.mark.parametrize("k", range(3, 9))
    def test_huge_diameter_hits_upper_clamp(self, k):
        # log D / log n >> 1 pushes raw above k - 1.
        assert choose_truncation_level(100, k, 10 ** 12) == k - 1

    def test_matches_corollary_formula_between_clamps(self):
        n, k, diameter = 10 ** 4, 6, 10 ** 2
        raw = k * (math.log(diameter) / math.log(n) + 1.0) / 2.0
        assert choose_truncation_level(n, k, diameter) == int(round(raw))


class TestDegenerateInputs:
    def test_k2_always_one(self):
        # For k = 2 the clamp interval [2, 1] is empty; the function pins
        # l0 to the only level (1) regardless of n and D.
        for diameter in (1, 5, 10 ** 6):
            assert choose_truncation_level(1000, 2, diameter) == 1

    @pytest.mark.parametrize("n", [0, 1])
    def test_tiny_n_falls_back(self, n):
        assert choose_truncation_level(n, 4, 10) == 3  # max(1, k - 1)

    def test_k1_falls_back_to_one(self):
        assert choose_truncation_level(100, 1, 10) == 1

    def test_diameter_below_two_is_clamped_in_log(self):
        # log(max(2, D)) guards D in {0, 1}; both behave like D = 2.
        assert (choose_truncation_level(1000, 5, 0)
                == choose_truncation_level(1000, 5, 2))


class TestAutoModeUsesChoice:
    @pytest.fixture(scope="class")
    def er_graph(self):
        return graphs.erdos_renyi_graph(24, 0.18, graphs.uniform_weights(1, 30),
                                        seed=41)

    def test_k2_auto_uses_budget_mode(self, er_graph):
        hierarchy = build_compact_routing(er_graph, k=2, seed=1)
        assert hierarchy.mode == "budget"
        assert hierarchy.l0 is None
        assert hierarchy.build_params["requested_mode"] == "auto"

    def test_k3_auto_uses_truncated_with_chosen_l0(self, er_graph):
        hierarchy = build_compact_routing(er_graph, k=3, seed=1)
        assert hierarchy.mode == "truncated"
        diameter = hierarchy.build_params["auto_hop_diameter"]
        assert hierarchy.l0 == choose_truncation_level(
            er_graph.num_nodes, 3, diameter)

    def test_explicit_l0_wins_over_auto_choice(self, er_graph):
        hierarchy = build_compact_routing(er_graph, k=4, l0=3, seed=1)
        assert hierarchy.mode == "truncated"
        assert hierarchy.l0 == 3
