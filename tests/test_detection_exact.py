"""Tests for exact weighted (S, h, sigma)-detection and its CONGEST protocol."""

import pytest

from repro import graphs
from repro.core import exact_weighted_detection, run_exact_detection_simulation
from repro.graphs import WeightedGraph, h_hop_distances, build_figure1_graph


def _pairs(result, node):
    return [(e.distance, e.source) for e in result.lists[node]]


class TestCentralizedReference:
    def test_matches_h_hop_distances(self, mixed_scale_graph):
        g = mixed_scale_graph
        sources = set(list(g.nodes())[:5])
        h, sigma = 4, 3
        result = exact_weighted_detection(g, sources, h, sigma)
        for v in g.nodes():
            expected = []
            for s in sources:
                d = h_hop_distances(g, s, h).get(v)
                if d is not None:
                    expected.append((d, s))
            expected.sort(key=lambda item: (item[0], repr(item[1])))
            assert _pairs(result, v) == expected[:sigma]

    def test_h_zero_only_self(self, grid):
        sources = set(list(grid.nodes())[:3])
        result = exact_weighted_detection(grid, sources, 0, 5)
        for v in grid.nodes():
            if v in sources:
                assert _pairs(result, v) == [(0.0, v)]
            else:
                assert _pairs(result, v) == []

    def test_round_bound_is_sigma_h(self, grid):
        result = exact_weighted_detection(grid, set(grid.nodes()[:2]), 5, 3)
        assert result.metrics.rounds == 15
        assert not result.metrics.measured

    def test_hops_recorded(self, weighted_path):
        result = exact_weighted_detection(weighted_path, {0}, h=5, sigma=1)
        entry = result.lists[4][0]
        assert entry.hops == 4

    def test_distance_lookup(self, grid):
        sources = set(list(grid.nodes())[:2])
        result = exact_weighted_detection(grid, sources, 6, 4)
        s = next(iter(sources))
        assert result.distance(s, s) == 0.0
        assert result.distance(s, "nonexistent") is None

    def test_invalid_args(self, grid):
        with pytest.raises(ValueError):
            exact_weighted_detection(grid, {grid.nodes()[0]}, -1, 2)
        with pytest.raises(ValueError):
            exact_weighted_detection(grid, {999}, 2, 2)


class TestCongestProtocol:
    def test_matches_reference_on_small_graph(self):
        g = graphs.erdos_renyi_graph(12, 0.3, graphs.uniform_weights(1, 20), seed=4)
        sources = set(list(g.nodes())[:4])
        h, sigma = 4, 3
        reference = exact_weighted_detection(g, sources, h, sigma)
        simulated = run_exact_detection_simulation(g, sources, h, sigma)
        for v in g.nodes():
            assert _pairs(simulated, v) == _pairs(reference, v)

    def test_figure1_bottleneck_congestion(self):
        """The Figure 1 instance forces at least ~h*sigma values over the cut."""
        h, sigma = 3, 3
        instance = build_figure1_graph(h, sigma)
        result = run_exact_detection_simulation(
            instance.graph, instance.source_set,
            instance.detection_hop_budget, sigma)
        u1, vh = instance.bottleneck
        traffic = result.metrics.edge_traffic(u1, vh)
        assert traffic >= instance.required_values_over_bottleneck()

    def test_metrics_are_measured(self, grid):
        sources = set(list(grid.nodes())[:2])
        result = run_exact_detection_simulation(grid, sources, 3, 2)
        assert result.metrics.measured
        assert result.metrics.total_messages > 0
