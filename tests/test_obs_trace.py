"""Trace capture/replay: artifact format, recorder, and workload identity."""

import json

import pytest

from repro import graphs
from repro.obs.trace import (
    SessionTrace,
    TraceBatch,
    TraceError,
    TraceRecorder,
    load_trace,
    replay_trace,
    save_trace,
)
from repro.serving import (
    BuildConfig,
    CacheConfig,
    ServingConfig,
    open_service,
)
from repro.serving.cli import main as serve_main


def _graph(seed=2):
    return graphs.erdos_renyi_graph(24, 0.25,
                                    graphs.uniform_weights(1, 20),
                                    seed=seed)


def _sample_trace():
    return SessionTrace(batches=[
        TraceBatch(kind="route", pairs=((0, 5), (1, 6), (2, 7)),
                   offset_seconds=0.0),
        TraceBatch(kind="distance", pairs=((3, 8),), offset_seconds=0.1),
        TraceBatch(kind="route", pairs=((4, 9), (0, 9)),
                   offset_seconds=0.25),
    ], meta={"note": "sample"})


class TestTraceFormat:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "s.trace")
        trace = _sample_trace()
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded.num_queries == 6
        assert loaded.pairs() == trace.pairs()
        assert loaded.batch_sizes() == [3, 1, 2]
        assert loaded.kinds() == ["route", "distance", "route"]
        assert loaded.meta["note"] == "sample"
        assert [b.offset_seconds for b in loaded.batches] \
            == [0.0, 0.1, 0.25]

    def test_checksum_tamper_detected(self, tmp_path):
        path = str(tmp_path / "s.trace")
        save_trace(_sample_trace(), path)
        with open(path, "r", encoding="utf-8") as handle:
            header, body = handle.read().split("\n", 1)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(header + "\n" + body.replace('"route"',
                                                      '"distance"', 1))
        with pytest.raises(TraceError):
            load_trace(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = str(tmp_path / "bogus.trace")
        path_obj = tmp_path / "bogus.trace"
        path_obj.write_text("NOT-A-TRACE v9\n{}")
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_non_json_safe_nodes_rejected(self, tmp_path):
        trace = SessionTrace(batches=[
            TraceBatch(kind="route", pairs=(((1, 2), 3),),
                       offset_seconds=0.0)])
        with pytest.raises(TraceError):
            save_trace(trace, str(tmp_path / "bad.trace"))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceBatch(kind="teleport", pairs=((0, 1),), offset_seconds=0.0)


class TestTraceWorkload:
    def test_to_workload_preserves_batch_shape(self):
        workload = _sample_trace().to_workload()
        assert workload.name == "trace"
        assert len(workload) == 6
        batches = list(workload.iter_batches(default_batch_size=64,
                                             default_kind="route"))
        # recorded shape wins over the defaults
        assert [(kind, len(pairs)) for kind, pairs in batches] \
            == [("route", 3), ("distance", 1), ("route", 2)]
        flat = [pair for _, pairs in batches for pair in pairs]
        assert flat == _sample_trace().pairs()

    def test_plain_workload_batches_by_default_size(self):
        from repro.serving.workloads import uniform_workload
        workload = uniform_workload(list(_graph().nodes()), 10, seed=1)
        batches = list(workload.iter_batches(default_batch_size=4,
                                             default_kind="distance"))
        assert [(kind, len(pairs)) for kind, pairs in batches] \
            == [("distance", 4), ("distance", 4), ("distance", 2)]


class TestRecordReplayIdentity:
    def _record(self, backend, graph):
        nodes = sorted(graph.nodes())
        recorder = TraceRecorder(backend)
        answers = []
        answers.append(recorder.route_batch(
            [(nodes[0], nodes[-1]), (nodes[1], nodes[-2])]))
        answers.append(recorder.distance_batch(
            [(nodes[2], nodes[-3]), (nodes[0], nodes[-1]),
             (nodes[3], nodes[5])]))
        answers.append(recorder.route_batch([(nodes[4], nodes[-4])]))
        flat = [a for batch in answers for a in batch]
        return recorder, flat

    def test_local_replay_is_identical(self, tmp_path):
        graph = _graph()
        config = ServingConfig(build=BuildConfig(k=2, seed=3),
                               cache=CacheConfig(capacity=16))
        path = str(tmp_path / "local.trace")
        with open_service(config, graph=graph) as backend:
            recorder, original = self._record(backend, graph)
            recorder.save(path, meta={"scenario": "local"})
            replayed = replay_trace(backend, load_trace(path))
            assert replayed == original

    def test_sharded_replay_matches_local_recording(self, tmp_path):
        graph = _graph()
        artifact = str(tmp_path / "shard.artifact")
        local = ServingConfig(artifact_path=artifact,
                              build=BuildConfig(k=2, seed=3),
                              cache=CacheConfig(capacity=16))
        path = str(tmp_path / "shard.trace")
        with open_service(local, graph=graph) as backend:
            recorder, original = self._record(backend, graph)
            recorder.save(path)
        trace = load_trace(path)
        sharded = ServingConfig(artifact_path=artifact, workers=2,
                                build=BuildConfig(k=2, seed=3),
                                cache=CacheConfig(capacity=16))
        with open_service(sharded, graph=graph) as backend:
            assert replay_trace(backend, trace) == original

    def test_recorder_delegates_backend_surface(self):
        graph = _graph()
        config = ServingConfig(build=BuildConfig(k=2, seed=3))
        with open_service(config, graph=graph) as backend:
            with TraceRecorder(backend) as recorder:
                recorder.route_batch([(sorted(graph.nodes())[0],
                                       sorted(graph.nodes())[-1])])
                assert recorder.graph is backend.graph
                assert recorder.query_stats().queries == 1
                # non-protocol extras pass through
                assert recorder.hierarchy is backend.hierarchy


class TestCliTraceFlow:
    def test_record_then_replay_via_cli(self, tmp_path, capsys):
        trace_path = str(tmp_path / "cli.trace")
        base = ["--graph", "er:n=25,p=0.2,seed=2,weights=uniform:1:20",
                "--k", "2"]
        assert serve_main(base + ["--workload", "bursty", "--queries",
                                  "120", "--batch-size", "30",
                                  "--trace-out", trace_path,
                                  "--json"]) == 0
        recorded = json.loads(capsys.readouterr().out)
        assert serve_main(base + ["--workload", "trace",
                                  "--trace-path", trace_path,
                                  "--json"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        assert replayed["workload"] == "trace"
        assert replayed["queries"] == recorded["queries"]
        assert replayed["delivered"] == recorded["delivered"]
        # batch shaping survived the round trip
        assert replayed["batches"] == recorded["batches"]
        meta = load_trace(trace_path).meta
        assert meta["workload"] == "bursty"
        assert meta["batch_size"] == 30

    def test_trace_workload_requires_trace_path(self):
        with pytest.raises(SystemExit):
            serve_main(["--graph", "grid:rows=4,cols=4",
                        "--workload", "trace"])

    def test_trace_path_rejected_off_trace_workload(self, tmp_path):
        with pytest.raises(SystemExit):
            serve_main(["--graph", "grid:rows=4,cols=4",
                        "--workload", "zipf",
                        "--trace-path", str(tmp_path / "x.trace")])

    def test_trace_replay_rejects_foreign_nodes(self, tmp_path):
        trace_path = str(tmp_path / "foreign.trace")
        save_trace(SessionTrace(batches=[
            TraceBatch(kind="route", pairs=((900, 901),),
                       offset_seconds=0.0)]), trace_path)
        with pytest.raises(ValueError, match="absent from the served graph"):
            serve_main(["--graph", "grid:rows=4,cols=4", "--k", "2",
                        "--workload", "trace", "--trace-path", trace_path])
