"""Tests for the baseline algorithms (Bellman-Ford, link-state, Nanongkai, prior work)."""

import pytest

from repro import graphs
from repro.baselines import (
    bellman_ford_apsp,
    compare_long_range_schemes,
    link_state_apsp,
    nanongkai_apsp,
)
from repro.graphs import all_pairs_weighted_distances, hop_diameter


class TestBellmanFord:
    def test_simulated_exactness(self, small_weighted_graph):
        g = small_weighted_graph
        result = bellman_ford_apsp(g, simulate=True)
        exact = all_pairs_weighted_distances(g)
        for u in g.nodes():
            for v in g.nodes():
                assert result.distances[u].get(v) == pytest.approx(exact[u][v])

    def test_next_hops_are_neighbors(self, small_weighted_graph):
        g = small_weighted_graph
        result = bellman_ford_apsp(g, simulate=True)
        for u in g.nodes():
            for dest, via in result.next_hops[u].items():
                if via is not None:
                    assert g.has_edge(u, via)

    def test_estimate_accessor(self, small_weighted_graph):
        result = bellman_ford_apsp(small_weighted_graph, simulate=True)
        v = small_weighted_graph.nodes()[0]
        assert result.estimate(v, v) == 0.0

    def test_round_count_at_least_diameter(self, small_weighted_graph):
        g = small_weighted_graph
        result = bellman_ford_apsp(g, simulate=True)
        assert result.metrics.rounds >= hop_diameter(g)
        assert result.metrics.measured

    def test_analytic_mode(self, small_weighted_graph):
        g = small_weighted_graph
        result = bellman_ford_apsp(g, simulate=False)
        assert result.metrics.rounds == g.num_nodes ** 2
        assert not result.metrics.measured

    def test_congestion_on_mixed_weights(self, mixed_scale_graph):
        """With mixed-scale weights the distance-vector protocol needs many
        announcements (its messages scale with the number of distance
        improvements), unlike the PDE-based algorithm."""
        result = bellman_ford_apsp(mixed_scale_graph, simulate=True)
        assert result.metrics.total_messages > mixed_scale_graph.num_nodes


class TestLinkState:
    def test_exactness(self, small_weighted_graph):
        g = small_weighted_graph
        result = link_state_apsp(g)
        exact = all_pairs_weighted_distances(g)
        for u in g.nodes():
            for v in g.nodes():
                assert result.distances[u].get(v) == pytest.approx(exact[u][v])

    def test_round_formula(self, small_weighted_graph):
        g = small_weighted_graph
        result = link_state_apsp(g)
        assert result.metrics.rounds >= g.num_edges
        assert result.storage_words_per_node == 3 * g.num_edges

    def test_next_hops_valid(self, grid):
        result = link_state_apsp(grid)
        for u in grid.nodes():
            for dest, via in result.next_hops[u].items():
                assert via is None or grid.has_edge(u, via)


class TestNanongkai:
    def test_stretch_guarantee(self, small_weighted_graph):
        g = small_weighted_graph
        result = nanongkai_apsp(g, epsilon=0.25, seed=1)
        exact = all_pairs_weighted_distances(g)
        for u in g.nodes():
            for v in g.nodes():
                if u == v:
                    continue
                est = result.estimate(u, v)
                assert est >= exact[u][v] - 1e-9
                assert est <= 1.25 * exact[u][v] + 1e-6

    def test_rounds_exceed_deterministic(self, small_weighted_graph):
        """The randomized baseline pays an extra log factor in rounds."""
        from repro.core import approximate_apsp

        g = small_weighted_graph
        ours = approximate_apsp(g, epsilon=0.25)
        theirs = nanongkai_apsp(g, epsilon=0.25, seed=1)
        assert theirs.metrics.rounds > ours.metrics.rounds

    def test_deterministic_given_seed(self, small_weighted_graph):
        r1 = nanongkai_apsp(small_weighted_graph, epsilon=0.5, seed=9)
        r2 = nanongkai_apsp(small_weighted_graph, epsilon=0.5, seed=9)
        assert r1.metrics.rounds == r2.metrics.rounds


class TestPriorWorkAblation:
    def test_double_spanner_never_better(self):
        g = graphs.erdos_renyi_graph(22, 0.35, graphs.uniform_weights(1, 40), seed=12)
        comparison = compare_long_range_schemes(g, k=3, seed=2)
        assert comparison.new_max_stretch <= comparison.prior_max_stretch + 1e-9
        assert comparison.new_max_stretch <= 2 * 3 - 1 + 1e-6
        assert comparison.prior_max_stretch <= (2 * 3 - 1) ** 2 + 1e-6

    def test_greedy_method(self):
        g = graphs.erdos_renyi_graph(20, 0.4, graphs.uniform_weights(1, 30), seed=3)
        comparison = compare_long_range_schemes(g, k=2, seed=2, method="greedy")
        assert comparison.new_max_stretch <= 3 + 1e-6
        assert comparison.prior_max_stretch <= 9 + 1e-6

    def test_record_fields(self):
        g = graphs.complete_graph(12, graphs.uniform_weights(1, 99), seed=4)
        comparison = compare_long_range_schemes(g, k=2, seed=0)
        record = comparison.as_dict()
        assert record["skeleton_size"] == 12
        assert record["new_spanner_edges"] > 0
