"""Tests for destination-rooted routing trees built from PDE pointers."""

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.graphs import all_pairs_weighted_distances, path_weight
from repro.routing import build_destination_trees


@pytest.fixture(scope="module")
def pde_setup():
    g = graphs.erdos_renyi_graph(24, 0.2, graphs.uniform_weights(1, 40), seed=13)
    pde = solve_pde(g, g.nodes(), h=g.num_nodes, sigma=6, epsilon=0.25)
    family = build_destination_trees(g, pde)
    return g, pde, family


class TestTreeFamily:
    def test_one_tree_per_destination(self, pde_setup):
        g, pde, family = pde_setup
        assert set(family.destinations()) == set(g.nodes())

    def test_members_cover_lists(self, pde_setup):
        g, pde, family = pde_setup
        for v in g.nodes():
            for entry in pde.lists[v]:
                assert family[entry.source].contains(v)

    def test_roots_have_no_parent(self, pde_setup):
        _, _, family = pde_setup
        for dest in family.destinations():
            assert family[dest].parent[dest] is None

    def test_parents_are_graph_edges(self, pde_setup):
        g, _, family = pde_setup
        for dest in family.destinations():
            tree = family[dest]
            for node, parent in tree.parent.items():
                if parent is not None:
                    assert g.has_edge(node, parent)

    def test_paths_reach_root_with_bounded_stretch(self, pde_setup):
        g, pde, family = pde_setup
        exact = all_pairs_weighted_distances(g)
        for dest in list(family.destinations())[:10]:
            tree = family[dest]
            for node in list(tree.parent)[:10]:
                path = tree.path_to_root(node)
                assert path[0] == node
                assert path[-1] == dest
                if node != dest:
                    # Routing along the tree realises (roughly) the PDE
                    # estimate; in particular it is a real path, and when the
                    # node detected the destination its weight is at most the
                    # (1+eps) estimate.
                    est = pde.estimate(node, dest)
                    if est != float("inf"):
                        assert path_weight(g, path) <= est + 1e-6

    def test_tree_route_between_members(self, pde_setup):
        g, _, family = pde_setup
        dest = list(family.destinations())[0]
        tree = family[dest]
        members = list(tree.parent)[:6]
        for a in members:
            for b in members:
                path = tree.tree_route(a, b)
                assert path[0] == a and path[-1] == b
                for u, v in zip(path, path[1:]):
                    assert g.has_edge(u, v)

    def test_membership_counts_consistent(self, pde_setup):
        _, _, family = pde_setup
        counts = family.membership_counts()
        total = sum(counts.values())
        assert total == sum(tree.size for tree in family.trees.values())

    def test_trees_containing(self, pde_setup):
        g, pde, family = pde_setup
        v = g.nodes()[3]
        containing = set(family.trees_containing(v))
        for entry in pde.lists[v]:
            assert entry.source in containing

    def test_explicit_membership(self, pde_setup):
        g, pde, _ = pde_setup
        dest = g.nodes()[0]
        members = {dest: set(g.nodes())}
        family = build_destination_trees(g, pde, destinations=[dest],
                                         members_of=members)
        tree = family[dest]
        assert all(tree.contains(v) for v in g.nodes())

    def test_fallbacks_counted_not_fatal(self, pde_setup):
        """Even with a tiny sigma (so most nodes lack pointers), trees still
        span their members via counted fallback repairs."""
        g, _, _ = pde_setup
        pde_small = solve_pde(g, g.nodes(), h=g.num_nodes, sigma=1, epsilon=0.25)
        dest = g.nodes()[0]
        family = build_destination_trees(g, pde_small, destinations=[dest],
                                         members_of={dest: set(g.nodes())})
        tree = family[dest]
        assert all(tree.contains(v) for v in g.nodes())
        assert family.total_fallback_edges() >= 0

    def test_label_and_depth(self, pde_setup):
        _, _, family = pde_setup
        dest = list(family.destinations())[0]
        tree = family[dest]
        assert tree.depth >= 0
        assert tree.label_of(dest) == tree.routing.label_of(dest)
