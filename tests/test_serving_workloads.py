"""Workload generators: determinism, validity, and the intended skew shapes."""

import pytest

from repro import graphs
from repro.graphs.distances import bfs_hop_distances
from repro.serving import (
    QueryWorkload,
    WORKLOAD_NAMES,
    bursty_workload,
    locality_workload,
    make_workload,
    uniform_workload,
    zipf_workload,
)


@pytest.fixture(scope="module")
def workload_graph():
    return graphs.erdos_renyi_graph(40, 0.12, graphs.uniform_weights(1, 30),
                                    seed=19)


class TestCommonProperties:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_deterministic_given_seed(self, workload_graph, name):
        a = make_workload(name, workload_graph, 200, seed=5)
        b = make_workload(name, workload_graph, 200, seed=5)
        c = make_workload(name, workload_graph, 200, seed=6)
        assert a.pairs == b.pairs
        assert a.pairs != c.pairs

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_pairs_are_valid(self, workload_graph, name):
        workload = make_workload(name, workload_graph, 300, seed=1)
        assert len(workload) == 300
        nodes = set(workload_graph.nodes())
        for s, t in workload:
            assert s in nodes and t in nodes
            assert s != t

    def test_unknown_name_rejected(self, workload_graph):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("tidal", workload_graph, 10)

    def test_builtin_names_registered(self):
        assert set(WORKLOAD_NAMES) == {"uniform", "zipf", "locality",
                                       "bursty"}
        # the trace replay workload is registered but is not a generator
        # shape, so it stays out of the WORKLOAD_NAMES snapshot
        from repro.serving.workloads import workload_names
        assert "trace" in workload_names()
        assert "trace" not in WORKLOAD_NAMES

    def test_too_few_nodes_rejected(self):
        tiny = graphs.path_graph(1)
        with pytest.raises(ValueError):
            uniform_workload(tiny.nodes(), 5)

    def test_skew_summary(self, workload_graph):
        workload = make_workload("zipf", workload_graph, 500, seed=2)
        summary = workload.skew_summary()
        assert summary["queries"] == 500
        assert 0 < summary["distinct_pairs"] <= 500
        assert summary["repeat_rate"] == 1.0 - summary["distinct_pairs"] / 500
        assert 0 < summary["hottest_pair_share"] <= 1.0


class TestShapes:
    def test_zipf_is_more_repetitive_than_uniform(self, workload_graph):
        nodes = workload_graph.nodes()
        uniform = uniform_workload(nodes, 1000, seed=3)
        zipf = zipf_workload(nodes, 1000, skew=1.2, seed=3)
        assert zipf.distinct_pairs() < uniform.distinct_pairs()
        assert (zipf.skew_summary()["hottest_pair_share"]
                > uniform.skew_summary()["hottest_pair_share"])

    def test_higher_skew_concentrates_more(self, workload_graph):
        nodes = workload_graph.nodes()
        mild = zipf_workload(nodes, 1000, skew=0.8, seed=4)
        strong = zipf_workload(nodes, 1000, skew=2.0, seed=4)
        assert strong.distinct_pairs() < mild.distinct_pairs()

    def test_zipf_invalid_skew_rejected(self, workload_graph):
        with pytest.raises(ValueError, match="skew"):
            zipf_workload(workload_graph.nodes(), 10, skew=0.0)

    def test_zipf_collision_fallback_keeps_skew(self):
        """Regression: when a drawn pair collided (s == t) the replacement
        target used to be drawn *uniformly*, diluting the Zipf shape exactly
        on the hottest ranks where collisions concentrate.  The replacement
        must follow the Zipf weights conditioned on ``t != s``."""
        import random
        from collections import Counter

        nodes = list(range(3))
        skew = 3.0          # weights 1 : 1/8 : 1/27 -> collisions dominate

        def rankings(seed):
            rng = random.Random(seed)
            source_ranking = list(nodes)
            rng.shuffle(source_ranking)
            target_ranking = list(nodes)
            rng.shuffle(target_ranking)
            return source_ranking, target_ranking

        # A seed whose rankings share the hottest node, so most draws collide
        # on it and the fallback path carries most of the probability mass.
        seed = next(s for s in range(100)
                    if rankings(s)[0][0] == rankings(s)[1][0])
        _, target_ranking = rankings(seed)
        workload = zipf_workload(nodes, 6000, skew=skew, seed=seed)
        counts = Counter(t for _, t in workload.pairs)
        # Zipf-conditioned replacement keeps rank2 ~ (1/8)/(1/27) = 3.4x
        # rank3; the old uniform fallback pushed this ratio towards 1.
        assert counts[target_ranking[1]] / counts[target_ranking[2]] > 2.0

    def test_locality_full_bias_stays_in_ball(self, workload_graph):
        radius = 2
        workload = locality_workload(workload_graph, 300, hop_radius=radius,
                                     bias=1.0, seed=5)
        balls = {}
        for s, t in workload:
            if s not in balls:
                balls[s] = bfs_hop_distances(workload_graph, s)
            assert balls[s][t] <= radius

    def test_locality_zero_bias_is_uniform_style(self, workload_graph):
        workload = locality_workload(workload_graph, 300, bias=0.0, seed=5)
        # With bias 0 no BFS ball is ever consulted; targets roam globally.
        hop = {}
        far = 0
        for s, t in workload:
            if s not in hop:
                hop[s] = bfs_hop_distances(workload_graph, s)
            if hop[s][t] > 2:
                far += 1
        assert far > 0

    def test_locality_parameter_validation(self, workload_graph):
        with pytest.raises(ValueError, match="bias"):
            locality_workload(workload_graph, 10, bias=1.5)
        with pytest.raises(ValueError, match="hop_radius"):
            locality_workload(workload_graph, 10, hop_radius=0)


class TestBurstyShape:
    def test_bursts_concentrate_traffic(self, workload_graph):
        nodes = workload_graph.nodes()
        calm = bursty_workload(nodes, 1000, burst_rate=0.0, seed=7)
        stormy = bursty_workload(nodes, 1000, burst_rate=0.05,
                                 burst_length=60, burst_intensity=0.9, seed=7)
        # Bursts repeat one pair for stretches of the stream, so the bursty
        # stream is strictly more repetitive than its burst-free base.
        assert stormy.distinct_pairs() < calm.distinct_pairs()
        assert (stormy.skew_summary()["hottest_pair_share"]
                > calm.skew_summary()["hottest_pair_share"])

    def test_saturated_burst_is_one_pair(self, workload_graph):
        workload = bursty_workload(workload_graph.nodes(), 200,
                                   burst_rate=1.0, burst_length=10 ** 6,
                                   burst_intensity=1.0, seed=3)
        # The first organic query starts a burst that never ends; with
        # intensity 1.0 every later query repeats its pair.
        assert workload.distinct_pairs() == 1

    def test_diurnal_drift_rotates_the_hot_set(self):
        from collections import Counter

        nodes = list(range(12))
        # Extreme skew concentrates nearly all mass on rank 0, so each
        # window's most common source tracks the rotating ranking head.
        workload = bursty_workload(nodes, 240, skew=6.0, burst_rate=0.0,
                                   drift_period=240, seed=11)
        sources = [s for s, _ in workload.pairs]
        early = Counter(sources[:40]).most_common(1)[0][0]
        late = Counter(sources[120:160]).most_common(1)[0][0]
        assert early != late

    def test_no_drift_keeps_hot_set_static(self):
        from collections import Counter

        nodes = list(range(12))
        workload = bursty_workload(nodes, 240, skew=6.0, burst_rate=0.0,
                                   drift_period=10 ** 9, seed=11)
        sources = [s for s, _ in workload.pairs]
        early = Counter(sources[:40]).most_common(1)[0][0]
        late = Counter(sources[120:160]).most_common(1)[0][0]
        assert early == late

    def test_parameter_validation(self, workload_graph):
        nodes = workload_graph.nodes()
        with pytest.raises(ValueError, match="skew"):
            bursty_workload(nodes, 10, skew=0.0)
        with pytest.raises(ValueError, match="burst_rate"):
            bursty_workload(nodes, 10, burst_rate=1.5)
        with pytest.raises(ValueError, match="burst_length"):
            bursty_workload(nodes, 10, burst_length=0)
        with pytest.raises(ValueError, match="burst_intensity"):
            bursty_workload(nodes, 10, burst_intensity=-0.1)
        with pytest.raises(ValueError, match="drift_period"):
            bursty_workload(nodes, 10, drift_period=0)
        with pytest.raises(ValueError, match="at least 2 nodes"):
            bursty_workload([0], 10)


class TestQueryWorkloadContainer:
    def test_len_iter_and_params(self):
        workload = QueryWorkload(name="x", pairs=[(1, 2), (2, 1), (1, 2)],
                                 params={"seed": 0})
        assert len(workload) == 3
        assert list(workload) == [(1, 2), (2, 1), (1, 2)]
        assert workload.distinct_pairs() == 2
