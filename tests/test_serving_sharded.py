"""ShardedRoutingService: partitioning, answer identity, stats merging, lifecycle."""

import pytest

from repro import graphs
from repro.analysis.experiments import run_sharded_experiment
from repro.serving import (
    RoutingService,
    ServingStats,
    ShardError,
    ShardedRoutingService,
    WORKLOAD_NAMES,
    execute_query_shard,
    make_workload,
    partition_pairs,
)


@pytest.fixture(scope="module")
def shard_graph():
    return graphs.erdos_renyi_graph(30, 0.15, graphs.uniform_weights(1, 50),
                                    seed=17)


@pytest.fixture(scope="module")
def artifact_path(shard_graph, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("sharded") / "hierarchy.artifact")
    RoutingService.build_or_load(path, graph=shard_graph, k=3, seed=4)
    return path


@pytest.fixture(scope="module")
def reference_service(artifact_path):
    return RoutingService.load(artifact_path)


class TestServingStatsMerge:
    def test_counters_sum(self):
        a = ServingStats(queries=10, route_queries=7, distance_queries=3,
                         batches=2, batched_queries=9, cache_hits=4,
                         cache_misses=6, hot_hits=1)
        b = ServingStats(queries=5, route_queries=5, batches=1,
                         batched_queries=5, cache_hits=2, cache_misses=3)
        merged = ServingStats.merge([a, b])
        assert merged.queries == 15
        assert merged.route_queries == 12
        assert merged.distance_queries == 3
        assert merged.batches == 3
        assert merged.batched_queries == 14
        assert (merged.cache_hits, merged.cache_misses) == (6, 9)
        assert merged.hot_hits == 1
        assert merged.cache_hit_rate == 6 / 15
        assert merged.extra["merged_from"] == 2

    def test_optional_fields(self):
        a = ServingStats(load_seconds=1.0, artifact_bytes=100)
        b = ServingStats(load_seconds=2.0, artifact_bytes=100)
        c = ServingStats()
        merged = ServingStats.merge([a, b, c])
        assert merged.load_seconds == 3.0       # total wall clock paid
        assert merged.artifact_bytes == 100     # same artifact, not 200
        assert merged.build_seconds is None
        assert ServingStats.merge([]).load_seconds is None

    def test_extra_kept_only_on_agreement(self):
        a = ServingStats(extra={"n": 30, "worker_id": 0})
        b = ServingStats(extra={"n": 30, "worker_id": 1})
        merged = a.combine(b)
        assert merged.extra["n"] == 30
        assert "worker_id" not in merged.extra


class TestPartitionPairs:
    PAIRS = [(0, 1), (2, 3), (0, 1), (4, 5), (2, 3), (6, 7)]

    def test_round_robin_balances_and_preserves_order(self):
        shards = partition_pairs(self.PAIRS, 2, strategy="round_robin")
        assert [idx for idx, _ in shards[0]] == [0, 2, 4]
        assert [idx for idx, _ in shards[1]] == [1, 3, 5]
        assert abs(len(shards[0]) - len(shards[1])) <= 1

    def test_hash_pair_groups_duplicates(self):
        shards = partition_pairs(self.PAIRS, 3, strategy="hash_pair")
        shard_of = {}
        for shard_id, shard in enumerate(shards):
            for index, pair in shard:
                assert self.PAIRS[index] == pair
                shard_of.setdefault(pair, set()).add(shard_id)
        # Every occurrence of a pair lands on exactly one shard.
        assert all(len(shard_ids) == 1 for shard_ids in shard_of.values())
        # Indices inside a shard keep stream order.
        for shard in shards:
            indices = [index for index, _ in shard]
            assert indices == sorted(indices)

    def test_hash_pair_is_deterministic(self):
        first = partition_pairs(self.PAIRS, 4, strategy="hash_pair")
        second = partition_pairs(self.PAIRS, 4, strategy="hash_pair")
        assert first == second

    def test_everything_assigned_exactly_once(self):
        for strategy in ("round_robin", "hash_pair"):
            shards = partition_pairs(self.PAIRS, 4, strategy=strategy)
            indices = sorted(index for shard in shards for index, _ in shard)
            assert indices == list(range(len(self.PAIRS)))

    def test_bad_arguments_rejected(self):
        with pytest.raises(ValueError, match="num_shards"):
            partition_pairs(self.PAIRS, 0)
        with pytest.raises(ValueError, match="unknown partition strategy"):
            partition_pairs(self.PAIRS, 2, strategy="random")


class TestShardedIdentity:
    @pytest.mark.parametrize("shape", WORKLOAD_NAMES)
    def test_matches_single_process_per_workload(self, shard_graph,
                                                 artifact_path,
                                                 reference_service, shape):
        workload = make_workload(shape, shard_graph, 150, seed=9)
        expected_routes = reference_service.route_batch(workload.pairs)
        expected_dists = reference_service.distance_batch(workload.pairs)
        with ShardedRoutingService(artifact_path, num_workers=2) as sharded:
            routes = sharded.route_batch(workload.pairs)
            dists = sharded.distance_batch(workload.pairs)
        assert [t.path for t in routes] == [t.path for t in expected_routes]
        assert [t.weight for t in routes] == [t.weight
                                              for t in expected_routes]
        assert dists == expected_dists

    @pytest.mark.parametrize("partitioner", ["round_robin", "hash_pair"])
    def test_order_preserved_with_duplicates(self, shard_graph, artifact_path,
                                             reference_service, partitioner):
        nodes = shard_graph.nodes()
        pairs = [(nodes[0], nodes[5]), (nodes[3], nodes[8]),
                 (nodes[0], nodes[5]), (nodes[9], nodes[2]),
                 (nodes[3], nodes[8]), (nodes[0], nodes[5])] * 5
        expected = reference_service.distance_batch(pairs)
        with ShardedRoutingService(artifact_path, num_workers=3,
                                   partitioner=partitioner) as sharded:
            assert sharded.distance_batch(pairs) == expected
            assert sharded.route_batch([]) == []

    def test_execute_query_shard_via_pool(self, shard_graph, artifact_path,
                                          reference_service):
        """The one-shot picklable entry point fans out with a plain Pool."""
        import multiprocessing

        workload = make_workload("uniform", shard_graph, 90, seed=12)
        shards = partition_pairs(workload.pairs, 2, strategy="round_robin")
        jobs = [(artifact_path, [pair for _, pair in shard], "distance")
                for shard in shards]
        with multiprocessing.Pool(2) as pool:
            outcomes = pool.starmap(execute_query_shard, jobs)
        gathered = [None] * len(workload.pairs)
        for shard, (values, stats) in zip(shards, outcomes):
            assert stats.distance_queries == len(shard)
            for (index, _), value in zip(shard, values):
                gathered[index] = value
        assert gathered == reference_service.distance_batch(workload.pairs)

    def test_experiment_runner_confirms_identity(self, shard_graph):
        record = run_sharded_experiment(shard_graph, k=2, num_queries=120,
                                        worker_counts=(1, 2), batch_size=60)
        assert len(record["scaling"]) == 2
        assert all(entry["identical_to_single_process"]
                   for entry in record["scaling"])
        assert record["scaling"][0]["speedup"] == 1.0


class TestMergedStats:
    def test_totals_equal_sum_of_worker_stats(self, shard_graph,
                                              artifact_path):
        workload = make_workload("zipf", shard_graph, 200, seed=6)
        with ShardedRoutingService(artifact_path, num_workers=2) as sharded:
            sharded.route_batch(workload.pairs)
            sharded.distance_batch(workload.pairs)
            per_worker = sharded.worker_stats()
            merged = sharded.merged_stats()
        assert len(per_worker) == 2
        for attr in ("queries", "route_queries", "distance_queries",
                     "batches", "batched_queries", "cache_hits",
                     "cache_misses", "hot_hits"):
            assert getattr(merged, attr) == sum(getattr(stats, attr)
                                                for stats in per_worker), attr
        assert merged.queries == 2 * len(workload)
        assert merged.extra["workers"] == 2
        assert merged.extra["scatter_batches"] == 2

    def test_final_stats_survive_close(self, shard_graph, artifact_path):
        workload = make_workload("uniform", shard_graph, 60, seed=2)
        sharded = ShardedRoutingService(artifact_path, num_workers=2)
        with sharded:
            sharded.route_batch(workload.pairs)
        # Drained on close: merged_stats now reads the final snapshots.
        merged = sharded.merged_stats()
        assert merged.queries == len(workload)
        assert merged.extra["merged_from"] == 2


class TestLifecycle:
    def test_missing_artifact_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="does not exist"):
            ShardedRoutingService(str(tmp_path / "absent.artifact"))

    def test_bad_parameters_rejected(self, artifact_path):
        with pytest.raises(ValueError, match="num_workers"):
            ShardedRoutingService(artifact_path, num_workers=0)
        with pytest.raises(ValueError, match="partition strategy"):
            ShardedRoutingService(artifact_path, partitioner="modulo")

    def test_build_or_load_creates_artifact(self, shard_graph, tmp_path):
        path = str(tmp_path / "fresh.artifact")
        sharded = ShardedRoutingService.build_or_load(path, graph=shard_graph,
                                                      k=2, seed=1,
                                                      num_workers=2)
        try:
            assert sharded.stats.build_seconds is not None
            assert sharded.graph is shard_graph
            import os
            assert os.path.exists(path)
        finally:
            sharded.close()

    def test_workers_shut_down_on_query_exception(self, shard_graph,
                                                  artifact_path):
        sharded = ShardedRoutingService(artifact_path, num_workers=2).start()
        processes = [handle.process for handle in sharded._workers]
        assert all(process.is_alive() for process in processes)
        with pytest.raises(ShardError, match="unknown node") as excinfo:
            sharded.route_batch([(shard_graph.nodes()[0], "no-such-node")])
        # The remote traceback travels with the error for debuggability.
        assert "Traceback" in excinfo.value.worker_traceback
        # Fail-stop: the exception shuts the whole front-end down.
        for process in processes:
            process.join(timeout=10.0)
        assert not any(process.is_alive() for process in processes)
        with pytest.raises(ShardError, match="closed"):
            sharded.route_batch([(0, 1)])

    def test_close_is_idempotent_and_kills_workers(self, artifact_path):
        sharded = ShardedRoutingService(artifact_path, num_workers=2).start()
        processes = [handle.process for handle in sharded._workers]
        first = sharded.close()
        second = sharded.close()
        assert len(first) == 2 and first == second
        assert not any(process.is_alive() for process in processes)
