"""Artifact persistence: format header, integrity checking, lossless round-trips.

This module pins the *format-1* (monolithic pickle) contract — the fixture
saves with ``format=1`` explicitly, since format 2 (the mmap-able section
table) became the default writer.  The format-2 layout, lazy loading,
corruption detection and sub-artifact slicing are covered by
``test_artifact_v2.py``.
"""

import itertools
import json

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.routing import build_compact_routing
from repro.serving import (
    ArtifactError,
    artifact_info,
    load_hierarchy,
    load_pde,
    read_artifact,
    save_hierarchy,
    save_pde,
    write_artifact,
)


def _graph_family():
    """Two generators (acceptance criterion) covering both hierarchy modes."""
    return {
        "er_k3": (graphs.erdos_renyi_graph(
            28, 0.16, graphs.uniform_weights(1, 40), seed=3), 3),
        "grid_k2": (graphs.grid_graph(
            4, 6, graphs.mixed_scale_weights(1, 500, 0.3), seed=1), 2),
    }


@pytest.fixture(scope="module", params=sorted(_graph_family()))
def saved_hierarchy(request, tmp_path_factory):
    name = request.param
    graph, k = _graph_family()[name]
    hierarchy = build_compact_routing(graph, k=k, seed=7)
    path = tmp_path_factory.mktemp("artifacts") / f"{name}.artifact"
    info = save_hierarchy(hierarchy, str(path), format=1)
    return graph, hierarchy, str(path), info


class TestFormat:
    def test_header_is_readable_without_payload(self, saved_hierarchy):
        graph, hierarchy, path, written = saved_hierarchy
        info = artifact_info(path)
        assert info.kind == "routing_hierarchy"
        assert info.format_version == 1
        assert info.payload_sha256 == written.payload_sha256
        assert info.metadata["n"] == graph.num_nodes
        assert info.metadata["k"] == hierarchy.k
        assert info.metadata["mode"] == hierarchy.mode

    def test_magic_line_and_json_header_on_disk(self, saved_hierarchy):
        _, _, path, _ = saved_hierarchy
        with open(path, "rb") as fh:
            assert fh.readline() == b"REPRO-ARTIFACT v1\n"
            header = json.loads(fh.readline().decode("utf-8"))
        assert header["kind"] == "routing_hierarchy"
        assert header["payload_bytes"] > 0

    def test_non_artifact_file_is_rejected(self, tmp_path):
        path = tmp_path / "not_an_artifact"
        path.write_bytes(b"just some text\nmore text\n")
        with pytest.raises(ArtifactError, match="bad magic"):
            artifact_info(str(path))

    def test_future_format_version_is_rejected(self, tmp_path):
        path = tmp_path / "future"
        path.write_bytes(b"REPRO-ARTIFACT v99\n{}\n")
        with pytest.raises(ArtifactError, match="unsupported"):
            artifact_info(str(path))


class TestIntegrity:
    def test_payload_corruption_is_detected(self, saved_hierarchy, tmp_path):
        _, _, path, _ = saved_hierarchy
        blob = bytearray(open(path, "rb").read())
        blob[-10] ^= 0xFF  # flip a payload bit
        corrupt = tmp_path / "corrupt.artifact"
        corrupt.write_bytes(bytes(blob))
        with pytest.raises(ArtifactError, match="checksum"):
            read_artifact(str(corrupt))

    def test_truncation_is_detected(self, saved_hierarchy, tmp_path):
        _, _, path, _ = saved_hierarchy
        blob = open(path, "rb").read()
        truncated = tmp_path / "truncated.artifact"
        truncated.write_bytes(blob[:-20])
        with pytest.raises(ArtifactError, match="truncated"):
            read_artifact(str(truncated))

    def test_kind_mismatch_is_detected(self, tmp_path):
        path = tmp_path / "other.artifact"
        write_artifact(str(path), "something_else", {"x": 1})
        with pytest.raises(ArtifactError, match="expected"):
            load_hierarchy(str(path))

    def test_invalid_state_version_is_rejected(self, tmp_path):
        path = tmp_path / "bad_state.artifact"
        write_artifact(str(path), "routing_hierarchy", {"state_version": 999})
        with pytest.raises(ArtifactError, match="invalid hierarchy state"):
            load_hierarchy(str(path))


class TestHierarchyRoundTrip:
    def test_every_query_answers_identically(self, saved_hierarchy):
        """The acceptance criterion: a reloaded hierarchy answers every
        route / distance_estimate query identically to the in-memory one."""
        graph, built, path, _ = saved_hierarchy
        reloaded, info = load_hierarchy(path)
        assert info.payload_bytes > 0
        assert reloaded.k == built.k
        assert reloaded.mode == built.mode
        assert reloaded.build_params == built.build_params
        for u, v in itertools.permutations(graph.nodes(), 2):
            assert reloaded.distance(u, v) == built.distance(u, v)
            fresh, loaded = built.route(u, v), reloaded.route(u, v)
            assert loaded.path == fresh.path
            assert loaded.weight == fresh.weight
            assert loaded.delivered == fresh.delivered
            assert loaded.fallback_hops == fresh.fallback_hops

    def test_reload_of_reload_is_stable(self, saved_hierarchy, tmp_path):
        _, _, path, _ = saved_hierarchy
        reloaded, _ = load_hierarchy(path)
        again_path = str(tmp_path / "again.artifact")
        save_hierarchy(reloaded, again_path, format=1)
        # Save -> load -> save must be a fixed point at the state level (the
        # raw bytes may differ through pickle string-interning memo effects).
        first_state, _ = read_artifact(path)
        second_state, _ = read_artifact(again_path)
        assert first_state == second_state

    def test_graph_adjacency_order_survives(self, saved_hierarchy):
        graph, _, path, _ = saved_hierarchy
        reloaded, _ = load_hierarchy(path)
        assert reloaded.graph.nodes() == graph.nodes()
        for node in graph.nodes():
            assert (list(reloaded.graph.neighbor_weights(node).items())
                    == list(graph.neighbor_weights(node).items()))


class TestPDERoundTrip:
    def test_pde_save_load(self, tmp_path):
        graph = graphs.random_geometric_graph(25, 0.35, None, seed=9)
        sources = graph.nodes()[:6]
        pde = solve_pde(graph, sources, h=6, sigma=4, epsilon=0.5,
                        store_levels=False)
        path = tmp_path / "pde.artifact"
        info = save_pde(pde, str(path))
        assert info.kind == "pde_result"
        assert info.metadata["sources"] == len(sources)
        reloaded, _ = load_pde(str(path))
        assert reloaded.sources == pde.sources
        assert reloaded.estimates == pde.estimates
        assert reloaded.next_hops == pde.next_hops
        assert reloaded.rounding == pde.rounding
        assert reloaded.metrics.rounds == pde.metrics.rounds
        for v in graph.nodes():
            assert ([e.key() for e in reloaded.list_of(v)]
                    == [e.key() for e in pde.list_of(v)])
        # per_level is construction-time state and is deliberately dropped.
        assert reloaded.per_level is None
