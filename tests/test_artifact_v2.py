"""Artifact format v2: mmap layout, lazy loads, corruption, sub-artifacts.

The format-1 (monolithic pickle) contract is pinned by
``test_serving_artifacts.py``; this module covers the section-table format
that is now the default writer:

* v1 <-> v2 round trips answer every query identically (hierarchy and PDE);
* the on-disk layout is what the docstring promises (magic, header section
  table, offset-addressed sections);
* per-section integrity: truncation, flipped bytes and wrong offsets are
  all detected;
* per-shard sub-artifacts serve list-for-list identically to full-artifact
  sharded serving while each worker holds a fraction of the table bytes.
"""

import itertools
import json
import os

import pytest

from repro import graphs
from repro.core import solve_pde
from repro.routing import build_compact_routing
from repro.serving import (
    ArtifactError,
    ArtifactV2Reader,
    BuildConfig,
    CacheConfig,
    ServingConfig,
    ShardedRoutingService,
    artifact_info,
    load_hierarchy,
    load_pde,
    open_service,
    save_hierarchy,
    save_pde,
    stable_node_hash,
    verify_artifact,
    write_shard_artifacts,
    zipf_workload,
)


def _graph_family():
    """Both hierarchy modes: k=3 resolves to truncated (skeleton sections
    populated), k=2 to budget (skeleton sections are all-None)."""
    return {
        "er_k3": (graphs.erdos_renyi_graph(
            28, 0.16, graphs.uniform_weights(1, 40), seed=3), 3),
        "grid_k2": (graphs.grid_graph(
            4, 6, graphs.mixed_scale_weights(1, 500, 0.3), seed=1), 2),
    }


@pytest.fixture(scope="module", params=sorted(_graph_family()))
def saved_both_formats(request, tmp_path_factory):
    name = request.param
    graph, k = _graph_family()[name]
    hierarchy = build_compact_routing(graph, k=k, seed=7)
    base = tmp_path_factory.mktemp("artifacts_v2")
    v1_path = str(base / f"{name}.v1.artifact")
    v2_path = str(base / f"{name}.v2.artifact")
    save_hierarchy(hierarchy, v1_path, format=1)
    info = save_hierarchy(hierarchy, v2_path)      # format 2 is the default
    return graph, hierarchy, v1_path, v2_path, info


class TestLayout:
    def test_magic_and_section_table_on_disk(self, saved_both_formats):
        _, _, _, v2_path, written = saved_both_formats
        with open(v2_path, "rb") as fh:
            assert fh.readline() == b"REPRO-ARTIFACT v2\n"
            header = json.loads(fh.readline().decode("utf-8"))
        assert header["kind"] == "routing_hierarchy"
        for name in ("meta", "nodes", "pivots", "bunches", "graph",
                     "levels", "skeleton", "metrics"):
            assert name in header["sections"]
        # Offsets tile the payload exactly: sorted by offset, each section
        # starts where the previous one ended.
        entries = sorted(header["sections"].values(), key=lambda e: e["offset"])
        position = 0
        for entry in entries:
            assert entry["offset"] == position
            position += entry["length"]
        assert position == header["payload_bytes"] == written.payload_bytes

    def test_artifact_info_reports_format_2(self, saved_both_formats):
        graph, hierarchy, _, v2_path, _ = saved_both_formats
        info = artifact_info(v2_path)
        assert info.format_version == 2
        assert info.kind == "routing_hierarchy"
        assert info.sections is not None
        assert info.metadata["n"] == graph.num_nodes
        assert info.metadata["k"] == hierarchy.k

    def test_verify_artifact_passes_on_clean_file(self, saved_both_formats):
        _, _, v1_path, v2_path, _ = saved_both_formats
        assert verify_artifact(v2_path).format_version == 2
        assert verify_artifact(v1_path).format_version == 1


class TestRoundTrip:
    def test_v1_and_v2_answer_identically(self, saved_both_formats):
        """The acceptance criterion: every distance and route query answers
        identically across the built hierarchy, the v1 reload and the v2
        mmap reload."""
        graph, built, v1_path, v2_path, _ = saved_both_formats
        from_v1, _ = load_hierarchy(v1_path)
        from_v2, info = load_hierarchy(v2_path)
        assert info.format_version == 2
        for u, v in itertools.permutations(graph.nodes(), 2):
            expected = built.distance(u, v)
            assert from_v1.distance(u, v) == expected
            assert from_v2.distance(u, v) == expected
            fresh = built.route(u, v)
            for reloaded in (from_v1, from_v2):
                trace = reloaded.route(u, v)
                assert trace.path == fresh.path
                assert trace.weight == fresh.weight
                assert trace.delivered == fresh.delivered
                assert trace.fallback_hops == fresh.fallback_hops

    def test_pivot_rows_match_eager_hierarchy(self, saved_both_formats):
        graph, built, _, v2_path, _ = saved_both_formats
        from_v2, _ = load_hierarchy(v2_path)
        assert from_v2._pivot_backend is not None    # mmap fast path active
        for node in graph.nodes():
            assert from_v2.pivot_row(node) == built.pivot_row(node)

    def test_lazy_hierarchy_exports_original_state(self, saved_both_formats):
        """Materialising every lazy section reproduces the exact export —
        nothing is lost to the section split."""
        _, built, _, v2_path, _ = saved_both_formats
        from_v2, _ = load_hierarchy(v2_path)
        assert from_v2.export_state() == built.export_state()
        assert from_v2.build_params == built.build_params

    def test_resave_of_v2_load_round_trips(self, saved_both_formats, tmp_path):
        graph, built, _, v2_path, _ = saved_both_formats
        from_v2, _ = load_hierarchy(v2_path)
        again_path = str(tmp_path / "again.artifact")
        save_hierarchy(from_v2, again_path)
        again, _ = load_hierarchy(again_path)
        for u, v in itertools.islice(
                itertools.permutations(graph.nodes(), 2), 100):
            assert again.distance(u, v) == built.distance(u, v)

    def test_pde_v2_round_trip(self, tmp_path):
        graph = graphs.random_geometric_graph(25, 0.35, None, seed=9)
        sources = graph.nodes()[:6]
        pde = solve_pde(graph, sources, h=6, sigma=4, epsilon=0.5,
                        store_levels=False)
        v1_path, v2_path = str(tmp_path / "p.v1"), str(tmp_path / "p.v2")
        save_pde(pde, v1_path, format=1)
        info = save_pde(pde, v2_path)
        assert info.format_version == 2
        from_v1, _ = load_pde(v1_path)
        from_v2, _ = load_pde(v2_path)
        assert from_v2.estimates == pde.estimates == from_v1.estimates
        assert from_v2.next_hops == pde.next_hops
        for v in graph.nodes():
            assert ([e.key() for e in from_v2.list_of(v)]
                    == [e.key() for e in pde.list_of(v)])


class TestIntegrity:
    @staticmethod
    def _corrupt(path, tmp_path, mutate, name="corrupt.artifact"):
        blob = bytearray(open(path, "rb").read())
        mutate(blob)
        out = tmp_path / name
        out.write_bytes(bytes(blob))
        return str(out)

    def test_flipped_byte_in_every_section_is_detected(
            self, saved_both_formats, tmp_path):
        _, _, _, v2_path, info = saved_both_formats
        with open(v2_path, "rb") as fh:
            fh.readline()
            fh.readline()
            payload_start = fh.tell()
        for index, (name, entry) in enumerate(sorted(info.sections.items())):
            position = payload_start + entry["offset"] + entry["length"] // 2
            corrupt = self._corrupt(v2_path, tmp_path,
                                    lambda blob, p=position: blob.__setitem__(
                                        p, blob[p] ^ 0xFF),
                                    name=f"s{index}.artifact")
            with pytest.raises(ArtifactError, match="checksum mismatch"):
                verify_artifact(corrupt)

    def test_truncated_file_is_detected_at_open(self, saved_both_formats,
                                                tmp_path):
        _, _, _, v2_path, _ = saved_both_formats
        corrupt = self._corrupt(v2_path, tmp_path,
                                lambda blob: blob.__delitem__(
                                    slice(len(blob) - 20, len(blob))))
        with pytest.raises(ArtifactError, match="truncated"):
            load_hierarchy(corrupt)

    def test_wrong_offset_is_detected(self, saved_both_formats, tmp_path):
        """An out-of-bounds offset fails bounds validation at open; an
        in-bounds-but-wrong offset fails the section checksum."""
        _, _, _, v2_path, _ = saved_both_formats

        def rewrite_offset(new_offset):
            with open(v2_path, "rb") as fh:
                magic = fh.readline()
                header = json.loads(fh.readline().decode("utf-8"))
                payload = fh.read()
            header["sections"]["metrics"]["offset"] = new_offset
            out = tmp_path / f"off{new_offset}.artifact"
            out.write_bytes(magic + json.dumps(
                header, sort_keys=True).encode("utf-8") + b"\n" + payload)
            return str(out)

        with pytest.raises(ArtifactError, match="out of bounds"):
            ArtifactV2Reader(rewrite_offset(10 ** 9))
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            verify_artifact(rewrite_offset(0))

    def test_corrupt_record_table_fails_at_load(self, saved_both_formats,
                                                tmp_path):
        """The query-hot sections (pivots, bunches) are hash-verified at
        open — a flipped record byte can never silently answer queries."""
        _, _, _, v2_path, info = saved_both_formats
        with open(v2_path, "rb") as fh:
            fh.readline()
            fh.readline()
            payload_start = fh.tell()
        for section in ("pivots", "bunches"):
            entry = info.sections[section]
            position = payload_start + entry["offset"] + entry["length"] // 2
            corrupt = self._corrupt(v2_path, tmp_path,
                                    lambda blob, p=position: blob.__setitem__(
                                        p, blob[p] ^ 0xFF),
                                    name=f"{section}.artifact")
            with pytest.raises(ArtifactError, match="checksum mismatch"):
                load_hierarchy(corrupt)

    def test_corrupt_lazy_section_raises_on_access(self, saved_both_formats,
                                                   tmp_path):
        """A flipped byte in a lazily-loaded pickled section surfaces as
        ArtifactError when (and only when) that section materialises."""
        _, _, _, v2_path, info = saved_both_formats
        entry = info.sections["skeleton"]
        with open(v2_path, "rb") as fh:
            fh.readline()
            fh.readline()
            payload_start = fh.tell()
        position = payload_start + entry["offset"] + entry["length"] // 2
        corrupt = self._corrupt(v2_path, tmp_path,
                                lambda blob: blob.__setitem__(
                                    position, blob[position] ^ 0xFF))
        hierarchy, _ = load_hierarchy(corrupt)       # opens fine
        nodes = hierarchy.graph.nodes()
        hierarchy.distance(nodes[0], nodes[1])       # hot path untouched
        with pytest.raises(ArtifactError, match="checksum mismatch"):
            hierarchy.pde_skel                       # materialises skeleton

    def test_kind_mismatch_is_detected(self, tmp_path):
        graph = graphs.random_geometric_graph(20, 0.4, None, seed=2)
        pde = solve_pde(graph, graph.nodes()[:4], h=4, sigma=3, epsilon=0.5,
                        store_levels=False)
        path = str(tmp_path / "pde.v2")
        save_pde(pde, path)
        with pytest.raises(ArtifactError, match="expected"):
            load_hierarchy(path)


class TestSubArtifacts:
    @pytest.fixture(scope="class")
    def sliced(self, tmp_path_factory):
        graph, k = _graph_family()["er_k3"]
        hierarchy = build_compact_routing(graph, k=k, seed=7)
        base = tmp_path_factory.mktemp("sub_artifacts")
        full_path = str(base / "full.artifact")
        save_hierarchy(hierarchy, full_path)
        workers = 4
        sub_paths = write_shard_artifacts(full_path, workers)
        return graph, hierarchy, full_path, sub_paths, workers

    def test_slices_shrink_per_worker_bytes(self, sliced):
        _, _, full_path, sub_paths, workers = sliced
        full_bytes = artifact_info(full_path).payload_bytes
        sub_bytes = [artifact_info(p).payload_bytes for p in sub_paths]
        mean_sub = sum(sub_bytes) / workers
        assert full_bytes / mean_sub >= 2.0, (
            f"sub-artifacts should hold <= half the table bytes per worker "
            f"at {workers} workers (full {full_bytes}, mean {mean_sub:.0f})")
        for path in sub_paths:
            verify_artifact(path)

    def test_slice_answers_owned_sources_identically(self, sliced):
        graph, hierarchy, _, sub_paths, workers = sliced
        shard = 1
        slice_hierarchy, info = load_hierarchy(sub_paths[shard])
        assert info.metadata["sub_artifact"]["shard"] == shard
        owned = [v for v in graph.nodes()
                 if stable_node_hash(v) % workers == shard]
        assert owned, "shard 1 should own at least one source"
        for source in owned:
            for target in graph.nodes():
                if source == target:
                    continue
                assert (slice_hierarchy.distance(source, target)
                        == hierarchy.distance(source, target))
                assert (slice_hierarchy.route(source, target).path
                        == hierarchy.route(source, target).path)

    def test_slice_refuses_foreign_sources_and_exports(self, sliced):
        graph, _, _, sub_paths, workers = sliced
        slice_hierarchy, _ = load_hierarchy(sub_paths[0])
        foreign = next(v for v in graph.nodes()
                       if stable_node_hash(v) % workers != 0)
        local = next(v for v in graph.nodes()
                     if stable_node_hash(v) % workers == 0 and v != foreign)
        with pytest.raises(KeyError, match="not.*present|slice"):
            slice_hierarchy.distance(foreign, local)
        with pytest.raises(ArtifactError, match="sub-artifact"):
            slice_hierarchy.export_state()     # aux sections are dropped

    def test_sharded_sub_artifact_serving_is_identical(self, sliced):
        """The acceptance criterion: sub-artifact sharded answers are
        list-for-list identical to full-artifact sharded serving (which is
        itself pinned to local serving by the PR-3 tests)."""
        graph, hierarchy, full_path, sub_paths, workers = sliced
        pairs = zipf_workload(graph.nodes(), 240, seed=11).pairs
        chunks = [pairs[lo:lo + 60] for lo in range(0, len(pairs), 60)]
        with ShardedRoutingService(full_path, num_workers=workers,
                                   partitioner="hash_source") as full:
            full_routes = [t for c in chunks for t in full.route_batch(c)]
            full_dists = [d for c in chunks for d in full.distance_batch(c)]
        with ShardedRoutingService(full_path, num_workers=workers,
                                   partitioner="hash_source",
                                   sub_artifact_paths=sub_paths) as sub:
            sub_routes = [t for c in chunks for t in sub.route_batch(c)]
            sub_dists = [d for c in chunks for d in sub.distance_batch(c)]
            merged = sub.merged_stats()
        assert sub_dists == full_dists
        assert [t.path for t in sub_routes] == [t.path for t in full_routes]
        assert [t.weight for t in sub_routes] == [t.weight for t in full_routes]
        assert merged.extra["sub_artifacts"] is True
        # Per-worker loaded bytes are additive across workers and strictly
        # below what N full copies would have held.
        full_bytes = artifact_info(full_path).payload_bytes
        assert merged.extra["loaded_table_bytes"] < workers * full_bytes / 2

    def test_wrong_partitioner_is_rejected(self, sliced):
        _, _, full_path, sub_paths, workers = sliced
        with pytest.raises(ValueError, match="source"):
            ShardedRoutingService(full_path, num_workers=workers,
                                  partitioner="round_robin",
                                  sub_artifact_paths=sub_paths)
        with pytest.raises(ValueError, match="hash_source"):
            write_shard_artifacts(full_path, workers,
                                  partitioner="round_robin")

    def test_wrong_slice_count_is_rejected(self, sliced):
        _, _, full_path, sub_paths, workers = sliced
        with pytest.raises(ValueError, match="one per worker"):
            ShardedRoutingService(full_path, num_workers=workers,
                                  partitioner="hash_source",
                                  sub_artifact_paths=sub_paths[:-1])

    def test_misordered_slices_are_rejected(self, sliced):
        _, _, full_path, sub_paths, workers = sliced
        shuffled = [sub_paths[1], sub_paths[0]] + sub_paths[2:]
        with pytest.raises(ValueError, match="shard order"):
            ShardedRoutingService(full_path, num_workers=workers,
                                  partitioner="hash_source",
                                  sub_artifact_paths=shuffled)

    def test_stale_slices_of_rebuilt_artifact_are_rejected(self, tmp_path):
        """Slices must derive from the artifact they are served with —
        rebuilding in place while old slices linger must fail loudly, not
        silently serve the previous hierarchy's tables."""
        graph, k = _graph_family()["grid_k2"]
        path = str(tmp_path / "rebuilt.artifact")
        save_hierarchy(build_compact_routing(graph, k=k, seed=7), path)
        stale_paths = write_shard_artifacts(path, 2)
        save_hierarchy(build_compact_routing(graph, k=k, seed=8), path)
        with pytest.raises(ValueError, match="different build"):
            ShardedRoutingService(path, num_workers=2,
                                  partitioner="hash_source",
                                  sub_artifact_paths=stale_paths)
        # Re-slicing repairs it.
        fresh_paths = write_shard_artifacts(path, 2)
        service = ShardedRoutingService(path, num_workers=2,
                                        partitioner="hash_source",
                                        sub_artifact_paths=fresh_paths)
        assert service.sub_artifact_paths == fresh_paths

    def test_v1_artifact_cannot_be_sliced(self, tmp_path):
        graph, k = _graph_family()["grid_k2"]
        hierarchy = build_compact_routing(graph, k=k, seed=7)
        v1_path = str(tmp_path / "old.artifact")
        save_hierarchy(hierarchy, v1_path, format=1)
        with pytest.raises(ArtifactError, match="format-2"):
            write_shard_artifacts(v1_path, 2)


class TestOpenServiceIntegration:
    def test_open_service_records_load_path_metrics(self, tmp_path):
        graph, k = _graph_family()["grid_k2"]
        path = str(tmp_path / "svc.artifact")
        config = ServingConfig(artifact_path=path,
                               build=BuildConfig(k=k, seed=7),
                               cache=CacheConfig(capacity=128))
        with open_service(config, graph=graph) as built:
            extras = built.query_stats().extra
            assert extras["artifact_format"] == 2
            assert extras["artifact_load"] == "built"
            assert extras["cache_policy"] == "lru"
        with open_service(config, graph=graph) as loaded:
            extras = loaded.query_stats().extra
            assert extras["artifact_format"] == 2
            assert extras["artifact_load"] == "mmap"
            assert extras["loaded_table_bytes"] == artifact_info(
                path).payload_bytes

    def test_build_path_honours_artifact_format_1(self, tmp_path):
        graph, k = _graph_family()["grid_k2"]
        path = str(tmp_path / "legacy.artifact")
        config = ServingConfig(
            artifact_path=path,
            build=BuildConfig(k=k, seed=7, artifact_format=1),
            cache=CacheConfig(capacity=128))
        with open_service(config, graph=graph):
            pass
        assert artifact_info(path).format_version == 1
        # Reloading a v1 artifact with a format-2 request serves it as-is:
        # the format is a storage detail, not a freshness parameter.
        v2_request = ServingConfig(artifact_path=path,
                                   build=BuildConfig(k=k, seed=7),
                                   cache=CacheConfig(capacity=128))
        with open_service(v2_request, graph=graph) as service:
            extras = service.query_stats().extra
            assert extras["artifact_format"] == 1
            assert extras["artifact_load"] == "pickle"

    def test_sub_artifact_config_requires_source_partitioning(self):
        with pytest.raises(ValueError, match="workers"):
            ServingConfig(artifact_path="x", sub_artifacts=True)

    def test_open_service_sub_artifacts_end_to_end(self, tmp_path):
        graph, k = _graph_family()["grid_k2"]
        path = str(tmp_path / "subsvc.artifact")
        local_config = ServingConfig(artifact_path=path,
                                     build=BuildConfig(k=k, seed=7),
                                     cache=CacheConfig(capacity=128))
        pairs = zipf_workload(graph.nodes(), 160, seed=5).pairs
        with open_service(local_config, graph=graph) as local:
            expected = local.distance_batch(pairs)
        sharded_config = ServingConfig(
            artifact_path=path, workers=2, partitioner="hash_source",
            sub_artifacts=True, build=BuildConfig(k=k, seed=7),
            cache=CacheConfig(capacity=128))
        with open_service(sharded_config, graph=graph) as sharded:
            assert sharded.sub_artifact_paths is not None
            assert all(os.path.exists(p)
                       for p in sharded.sub_artifact_paths)
            assert sharded.distance_batch(pairs) == expected


class TestFrontCodedNodeTable:
    """Front-coded intern-table compression (opt-in, header-flagged)."""

    def test_round_trip_preserves_labels_and_order(self):
        from repro.routing.tables import NodeInternTable

        for labels in (
            [f"host-{i:04d}.rack{i % 7}" for i in range(200)],
            list(range(50)),
            ["solo"],
            [],
            ["aa", 5, "ab", None, ("x", 1), "abc", 2.5, "b"],
        ):
            table = NodeInternTable(labels)
            decoded = NodeInternTable.decode(table.encode(compress=True))
            assert decoded.nodes() == labels

    def test_prefix_heavy_strings_shrink(self):
        from repro.routing.tables import NodeInternTable

        table = NodeInternTable([f"node-{i:06d}" for i in range(1000)])
        assert len(table.encode(compress=True)) < 0.8 * len(table.encode())

    def test_legacy_decoder_rejects_compressed_table(self):
        # A reader predating front coding parses the first four bytes as a
        # node count and the next byte as a value tag; the compressed
        # layout makes that tag invalid by construction, so the old code
        # path dies with its own typed error instead of misreading labels.
        import struct

        from repro.routing.tables import (
            NodeInternTable,
            RecordTableError,
            _decode_value,
        )

        blob = NodeInternTable(["a", "b"]).encode(compress=True)
        (legacy_count,) = struct.unpack_from("<I", blob, 0)
        assert legacy_count == 0xFFFFFFFF
        with pytest.raises(RecordTableError,
                           match="unknown intern-table value tag"):
            _decode_value(memoryview(blob), 4)

    def test_unknown_version_byte_rejected(self):
        from repro.routing.tables import NodeInternTable, RecordTableError

        blob = bytearray(NodeInternTable(["a"]).encode(compress=True))
        blob[4] = 0x7E
        with pytest.raises(RecordTableError, match="version"):
            NodeInternTable.decode(bytes(blob))

    def test_compressed_artifact_serves_identically(self, tmp_path):
        graph, k = _graph_family()["er_k3"]
        hierarchy = build_compact_routing(graph, k=k, seed=7)
        plain_path = str(tmp_path / "plain.artifact")
        fc_path = str(tmp_path / "fc.artifact")
        save_hierarchy(hierarchy, plain_path)
        save_hierarchy(hierarchy, fc_path, compress_node_table=True)
        assert artifact_info(plain_path).metadata[
            "node_table_encoding"] == "tagged"
        assert artifact_info(fc_path).metadata[
            "node_table_encoding"] == "front_coded"
        verify_artifact(fc_path)
        plain, _ = load_hierarchy(plain_path)
        compressed, _ = load_hierarchy(fc_path)
        pairs = zipf_workload(graph.nodes(), 80, seed=2).pairs
        assert ([compressed.route(s, t).path for s, t in pairs]
                == [plain.route(s, t).path for s, t in pairs])

    def test_compression_requires_format_2(self, tmp_path):
        graph, k = _graph_family()["grid_k2"]
        hierarchy = build_compact_routing(graph, k=k, seed=7)
        with pytest.raises(ValueError, match="format-2"):
            save_hierarchy(hierarchy, str(tmp_path / "x.artifact"),
                           format=1, compress_node_table=True)
