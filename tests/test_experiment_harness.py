"""The repro-experiment harness: run directories and regression gates."""

import json
import os

import pytest

from repro.obs.experiment import (
    DEFAULT_THRESHOLDS,
    Threshold,
    compare_runs,
    load_run,
    main as experiment_main,
    write_run_directory,
)
from repro.serving.cli import main as serve_main

SERVE_ARGS = ["--graph", "er:n=25,p=0.2,seed=2,weights=uniform:1:20",
              "--k", "2", "--workload", "zipf", "--queries", "200",
              "--batch-size", "25"]


class TestThresholds:
    def test_parse_full_spec(self):
        threshold = Threshold.parse("latency_ms.p99:25:lower")
        assert threshold.metric == "latency_ms.p99"
        assert threshold.max_regression_pct == 25.0
        assert not threshold.higher_is_better

    def test_parse_defaults(self):
        threshold = Threshold.parse("queries_per_second")
        assert threshold.max_regression_pct == 10.0
        assert threshold.higher_is_better

    @pytest.mark.parametrize("bad", ["", ":10", "m:10:sideways", "m:1:2:3"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            Threshold.parse(bad)


class TestCompareRuns:
    def test_within_threshold_is_ok(self):
        baseline = {"latency_ms": {"p99": 1.0}, "queries_per_second": 1000}
        candidate = {"latency_ms": {"p99": 1.05},
                     "queries_per_second": 960}
        evaluations = compare_runs(baseline, candidate)
        assert [e["status"] for e in evaluations] == ["ok", "ok"]

    def test_seeded_p99_regression_flagged(self):
        baseline = {"latency_ms": {"p99": 1.0}, "queries_per_second": 1000}
        candidate = {"latency_ms": {"p99": 1.5},
                     "queries_per_second": 1000}
        evaluations = compare_runs(baseline, candidate)
        by_metric = {e["metric"]: e for e in evaluations}
        assert by_metric["latency_ms.p99"]["status"] == "regression"
        assert by_metric["latency_ms.p99"]["regression_pct"] \
            == pytest.approx(50.0)
        assert by_metric["queries_per_second"]["status"] == "ok"

    def test_improvements_never_flag(self):
        baseline = {"latency_ms": {"p99": 2.0}, "queries_per_second": 500}
        candidate = {"latency_ms": {"p99": 0.5},
                     "queries_per_second": 5000}
        assert all(e["status"] == "ok"
                   for e in compare_runs(baseline, candidate))

    def test_missing_metric_is_skipped_not_passed(self):
        evaluations = compare_runs({}, {"latency_ms": {"p99": 1.0}},
                                   DEFAULT_THRESHOLDS)
        assert all(e["status"] == "skipped" for e in evaluations)

    def test_zero_baseline_only_flags_movement_toward_worse(self):
        thresholds = (Threshold("errors", 0.0, higher_is_better=False),)
        assert compare_runs({"errors": 0}, {"errors": 0},
                            thresholds)[0]["status"] == "ok"
        assert compare_runs({"errors": 0}, {"errors": 3},
                            thresholds)[0]["status"] == "regression"


class TestRunDirectories:
    def test_write_and_load_round_trip(self, tmp_path):
        run_dir = str(tmp_path / "exp" / "r1")
        record = {"queries_per_second": 123.0,
                  "latency_ms": {"p99": 0.8}}
        config = {"name": "exp", "serving": {"workers": 1}}
        write_run_directory(run_dir, record, config)
        loaded = load_run(run_dir)
        assert loaded["metrics"] == record
        assert loaded["config"] == config
        assert "python" in loaded["environment"]
        assert "timestamp_utc" in loaded["environment"]

    def test_load_rejects_non_run_directory(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_run(str(tmp_path))


class TestExperimentCli:
    def test_run_writes_run_directory(self, tmp_path, capsys):
        out = str(tmp_path / "runs")
        code = experiment_main(["run", "--name", "smoke", "--out", out,
                                "--run-id", "r1", "--"]
                               + SERVE_ARGS + ["--telemetry"])
        assert code == 0
        assert "smoke/r1" in capsys.readouterr().out
        run_dir = os.path.join(out, "smoke", "r1")
        loaded = load_run(run_dir)
        record = loaded["metrics"]
        assert record["queries"] == 200
        assert record["ok"] is True
        assert record["latency_ms"]["batches"] == 8
        assert record["stage_seconds"]["query"] > 0
        # --telemetry flowed through: full histogram buckets on disk
        telemetry = record["extra"]["telemetry"]
        assert "kernel_batch" in telemetry
        assert telemetry["kernel_batch"]["count"] == 8
        config = loaded["config"]
        assert config["serving"]["telemetry"] is True
        assert config["serving"]["workload"]["name"] == "zipf"

    def test_compare_gates_on_seeded_regression(self, tmp_path, capsys):
        base_dir = str(tmp_path / "a")
        cand_dir = str(tmp_path / "b")
        base = {"latency_ms": {"p99": 1.0}, "queries_per_second": 1000.0}
        worse = {"latency_ms": {"p99": 1.2}, "queries_per_second": 1000.0}
        write_run_directory(base_dir, base, {})
        write_run_directory(cand_dir, worse, {})
        assert experiment_main(["compare", base_dir, cand_dir]) == 1
        assert "regression" in capsys.readouterr().out
        assert experiment_main(["compare", base_dir, base_dir]) == 0
        assert "OK" in capsys.readouterr().out

    def test_compare_honours_custom_thresholds(self, tmp_path, capsys):
        base_dir = str(tmp_path / "a")
        cand_dir = str(tmp_path / "b")
        write_run_directory(base_dir, {"latency_ms": {"p99": 1.0},
                                       "queries_per_second": 1000.0}, {})
        write_run_directory(cand_dir, {"latency_ms": {"p99": 1.2},
                                       "queries_per_second": 900.0}, {})
        assert experiment_main(
            ["compare", base_dir, cand_dir,
             "--threshold", "latency_ms.p99:30:lower",
             "--threshold", "queries_per_second:15:higher",
             "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert len(report["evaluations"]) == 2

    def test_two_runs_and_compare_end_to_end(self, tmp_path, capsys):
        out = str(tmp_path / "runs")
        for run_id in ("base", "cand"):
            assert experiment_main(["run", "--name", "e2e", "--out", out,
                                    "--run-id", run_id, "--"]
                                   + SERVE_ARGS) == 0
        capsys.readouterr()
        # identical deterministic sessions: gate on exact-match metrics
        # (wall-clock ones are noisy on tiny runs)
        code = experiment_main(
            ["compare", os.path.join(out, "e2e", "base"),
             os.path.join(out, "e2e", "cand"),
             "--threshold", "queries:0:higher",
             "--threshold", "delivered:0:higher",
             "--threshold", "cache_hit_rate:0:higher"])
        assert code == 0


class TestCliJsonSchema:
    def test_json_record_has_latency_and_stages(self, tmp_path, capsys):
        artifact = str(tmp_path / "schema.artifact")
        assert serve_main(SERVE_ARGS + ["--artifact", artifact,
                                        "--hot", "4", "--json"]) == 0
        record = json.loads(capsys.readouterr().out)
        latency = record["latency_ms"]
        assert set(latency) == {"p50", "p95", "p99", "mean", "max",
                                "batches"}
        assert latency["batches"] == 8
        assert latency["p50"] <= latency["p95"] <= latency["p99"] \
            <= latency["max"]
        stages = record["stage_seconds"]
        assert set(stages) == {"build", "load", "warm", "query"}
        assert stages["build"] > 0
        # warm-up (hot-pair precompute) is measured and reported
        assert stages["warm"] is not None and stages["warm"] >= 0
        # stage_seconds["warm"] is the rounded view of warm_seconds
        assert record["warm_seconds"] == pytest.approx(stages["warm"],
                                                       abs=1e-4)

    def test_human_output_prints_p99_and_stages(self, capsys):
        assert serve_main(SERVE_ARGS) == 0
        out = capsys.readouterr().out
        assert "p99" in out and "ms/batch" in out
        assert "stages:" in out

    def test_sharded_merge_matches_single_process_totals(self, tmp_path,
                                                         capsys):
        artifact = str(tmp_path / "merge.artifact")
        argv = SERVE_ARGS + ["--artifact", artifact, "--telemetry",
                             "--json"]
        assert serve_main(argv) == 0
        local = json.loads(capsys.readouterr().out)
        assert serve_main(argv + ["--workers", "2"]) == 0
        sharded = json.loads(capsys.readouterr().out)
        # Per-worker registries merged through ServingStats.merge equal
        # the single-process totals for partition-invariant metrics.
        assert sharded["queries"] == local["queries"]
        assert sharded["delivered"] == local["delivered"]
        local_tel = local["extra"]["telemetry"]
        sharded_tel = sharded["extra"]["telemetry"]
        # The front-end scattered every one of the 8 client batches once;
        # the workers' merged kernel_batch spans cover the per-worker
        # sub-batches those scatters produced (at most workers x batches,
        # at least one per client batch).
        assert sharded_tel["scatter"]["count"] == local["batches"]
        assert sharded_tel["gather"]["count"] == local["batches"]
        assert local["batches"] <= sharded_tel["kernel_batch"]["count"] \
            <= 2 * local["batches"]
        assert local_tel["kernel_batch"]["count"] == local["batches"]
        # front-end spans exist only on the sharded side
        assert "scatter" not in local_tel
