"""Unit tests for the distance machinery of Section 2.2."""

import networkx as nx
import pytest

from repro.graphs import (
    WeightedGraph,
    all_pairs_hop_distances,
    all_pairs_weighted_distances,
    bfs_hop_distances,
    dijkstra,
    dijkstra_with_hops,
    h_hop_distances,
    h_hop_distances_from_sources,
    hop_diameter,
    path_hops,
    path_weight,
    reconstruct_path,
    shortest_path_diameter,
    weighted_diameter,
)
from repro import graphs


@pytest.fixture(scope="module")
def reference_graph():
    return graphs.erdos_renyi_graph(24, 0.18, graphs.uniform_weights(1, 40), seed=17)


class TestDijkstra:
    def test_matches_networkx(self, reference_graph):
        nx_graph = reference_graph.to_networkx()
        for source in list(reference_graph.nodes())[:5]:
            dist, _ = dijkstra(reference_graph, source)
            expected = nx.single_source_dijkstra_path_length(nx_graph, source)
            assert dist == pytest.approx(expected)

    def test_parent_reconstruction(self, reference_graph):
        source = reference_graph.nodes()[0]
        dist, parent = dijkstra(reference_graph, source)
        for target in list(reference_graph.nodes())[1:6]:
            path = reconstruct_path(parent, target)
            assert path[0] == source
            assert path[-1] == target
            assert path_weight(reference_graph, path) == pytest.approx(dist[target])

    def test_weight_fn_override(self):
        g = WeightedGraph.from_edges([(0, 1, 10), (1, 2, 10), (0, 2, 25)])
        dist, _ = dijkstra(g, 0, weight_fn=lambda u, v, w: 1)
        assert dist[2] == 1  # hop metric: direct edge wins

    def test_unreachable_nodes_absent(self):
        g = WeightedGraph.from_edges([(0, 1, 1)], nodes=[0, 1, 2])
        dist, _ = dijkstra(g, 0)
        assert 2 not in dist

    def test_reconstruct_unreachable_raises(self):
        g = WeightedGraph.from_edges([(0, 1, 1)], nodes=[0, 1, 2])
        _, parent = dijkstra(g, 0)
        with pytest.raises(ValueError):
            reconstruct_path(parent, 2)


class TestHopDistances:
    def test_bfs_matches_networkx(self, reference_graph):
        nx_graph = reference_graph.to_networkx()
        source = reference_graph.nodes()[0]
        assert bfs_hop_distances(reference_graph, source) == \
            nx.single_source_shortest_path_length(nx_graph, source)

    def test_hop_diameter_path(self):
        g = graphs.path_graph(7)
        assert hop_diameter(g) == 6

    def test_hop_diameter_requires_connected(self):
        g = WeightedGraph.from_edges([(0, 1, 1)], nodes=[0, 1, 2])
        with pytest.raises(ValueError):
            hop_diameter(g)

    def test_all_pairs_hop_distances(self, unit_path):
        table = all_pairs_hop_distances(unit_path)
        assert table[0][9] == 9
        assert table[4][6] == 2


class TestWeightedConcepts:
    def test_weighted_diameter_path(self, weighted_path):
        total = sum(w for _, _, w in weighted_path.edges())
        assert weighted_diameter(weighted_path) == total

    def test_shortest_path_diameter_path(self, weighted_path):
        assert shortest_path_diameter(weighted_path) == weighted_path.num_nodes - 1

    def test_spd_can_exceed_hop_diameter(self):
        # Triangle with one heavy edge: hop diameter is 1 but the shortest
        # weighted path between the heavy edge's endpoints uses 2 hops.
        g = WeightedGraph.from_edges([(0, 1, 1), (1, 2, 1), (0, 2, 100)])
        assert hop_diameter(g) == 1
        assert shortest_path_diameter(g) == 2

    def test_dijkstra_with_hops_prefers_fewer_hops(self):
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 2), (0, 2, 4)])
        dist, hops = dijkstra_with_hops(g, 0)
        assert dist[2] == 4
        assert hops[2] == 1  # the direct edge has equal weight but fewer hops

    def test_all_pairs_weighted_distances_symmetry(self, reference_graph):
        table = all_pairs_weighted_distances(reference_graph)
        nodes = reference_graph.nodes()
        for u in nodes[:6]:
            for v in nodes[:6]:
                assert table[u][v] == pytest.approx(table[v][u])


class TestHHopDistances:
    def test_zero_hops(self, reference_graph):
        source = reference_graph.nodes()[0]
        assert h_hop_distances(reference_graph, source, 0) == {source: 0.0}

    def test_unreachable_nodes_omitted(self):
        # Regression: the sparse-dict contract — a disconnected node admits
        # no source-v path at all, so it must be absent from the result
        # (conceptually wd_h = infinity), not mapped to a sentinel.
        g = WeightedGraph.from_edges([(0, 1, 2), (1, 2, 3)], nodes=[0, 1, 2, 3])
        dist = h_hop_distances(g, 0, h=5)
        assert 3 not in dist
        assert set(dist) == {0, 1, 2}
        assert dist[2] == 5.0

    def test_beyond_hop_budget_omitted(self):
        g = graphs.path_graph(6, graphs.unit_weights(), seed=0)
        dist = h_hop_distances(g, 0, h=2)
        assert set(dist) == {0, 1, 2}

    def test_monotone_in_h(self, mixed_scale_graph):
        source = mixed_scale_graph.nodes()[0]
        previous = h_hop_distances(mixed_scale_graph, source, 1)
        for h in range(2, 6):
            current = h_hop_distances(mixed_scale_graph, source, h)
            for node, dist in previous.items():
                assert current[node] <= dist + 1e-9
            previous = current

    def test_converges_to_true_distance(self, mixed_scale_graph):
        source = mixed_scale_graph.nodes()[0]
        n = mixed_scale_graph.num_nodes
        exact, _ = dijkstra(mixed_scale_graph, source)
        assert h_hop_distances(mixed_scale_graph, source, n) == pytest.approx(exact)

    def test_h_hop_never_below_true_distance(self, mixed_scale_graph):
        source = mixed_scale_graph.nodes()[0]
        exact, _ = dijkstra(mixed_scale_graph, source)
        limited = h_hop_distances(mixed_scale_graph, source, 3)
        for node, dist in limited.items():
            assert dist >= exact[node] - 1e-9

    def test_from_sources_table(self, grid):
        sources = grid.nodes()[:3]
        table = h_hop_distances_from_sources(grid, sources, 4)
        for v in grid.nodes():
            for s, d in table[v].items():
                assert s in sources
                assert d >= 0

    def test_negative_h_rejected(self, grid):
        with pytest.raises(ValueError):
            h_hop_distances(grid, grid.nodes()[0], -1)


class TestNumericTypes:
    """Regression: dijkstra used to return int distances while h_hop_distances
    returned floats, so stretch audits and serialized results compared
    int-vs-float tables.  All distance functions now return float values."""

    def test_dijkstra_returns_floats(self, reference_graph):
        dist, _ = dijkstra(reference_graph, reference_graph.nodes()[0])
        assert all(type(d) is float for d in dist.values())

    def test_dijkstra_with_hops_returns_float_distances(self, reference_graph):
        dist, hops = dijkstra_with_hops(reference_graph, reference_graph.nodes()[0])
        assert all(type(d) is float for d in dist.values())
        assert all(type(hc) is int for hc in hops.values())

    def test_h_hop_distances_returns_floats(self, reference_graph):
        dist = h_hop_distances(reference_graph, reference_graph.nodes()[0], 4)
        assert all(type(d) is float for d in dist.values())

    def test_dijkstra_and_h_hop_agree_exactly_at_full_horizon(self, reference_graph):
        source = reference_graph.nodes()[0]
        exact, _ = dijkstra(reference_graph, source)
        limited = h_hop_distances(reference_graph, source,
                                  reference_graph.num_nodes)
        assert limited == exact  # same types, same values — no approx needed

    def test_all_pairs_weighted_distances_floats(self, reference_graph):
        table = all_pairs_weighted_distances(reference_graph)
        for row in table.values():
            assert all(type(d) is float for d in row.values())


class TestPathHelpers:
    def test_path_weight_and_hops(self):
        g = WeightedGraph.from_edges([(0, 1, 3), (1, 2, 4)])
        assert path_weight(g, [0, 1, 2]) == 7
        assert path_hops([0, 1, 2]) == 2
        assert path_hops([0]) == 0
