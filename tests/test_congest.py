"""Tests for the CONGEST simulator: messages, metrics, network engine, BFS."""

import pytest

from repro import graphs
from repro.congest import (
    BROADCAST,
    BandwidthViolation,
    CongestMetrics,
    CongestNetwork,
    DistributedBFS,
    Message,
    build_bfs_tree,
    convergecast_rounds,
    global_broadcast_metrics,
    merge_metrics,
    message_words,
    pipelined_broadcast_rounds,
    verify_bfs_outputs,
)
from repro.congest.node import CongestAlgorithm, NodeView
from repro.graphs import bfs_hop_distances, hop_diameter


class TestMessage:
    def test_words_scalar(self):
        assert message_words(5) == 1
        assert message_words("abc") == 1
        assert message_words(None) == 1

    def test_words_tuple(self):
        assert message_words((1, 2, 3)) == 3
        assert message_words(((1, 2), 3)) == 3

    def test_words_dict(self):
        assert message_words({"a": 1}) == 2

    def test_message_autosize(self):
        assert Message((1, 2)).words == 2
        assert Message((1, 2), words=5).words == 5

    def test_message_unpacking(self):
        d, s = Message((7, "x"))
        assert d == 7 and s == "x"


class TestMetrics:
    def test_record_and_summarise(self):
        m = CongestMetrics()
        m.record_broadcast("a")
        m.record_broadcast("a")
        m.record_edge_message("a", "b")
        m.record_edge_message("b", "a")
        assert m.max_broadcasts() == 2
        assert m.edge_traffic("a", "b") == 2
        assert m.total_messages == 2
        assert m.summary()["max_edge_traffic"] == 2

    def test_merge_sequential(self):
        m1 = CongestMetrics(rounds=5)
        m1.record_broadcast("a")
        m2 = CongestMetrics(rounds=7)
        m2.record_broadcast("a")
        merged = merge_metrics(m1, m2, sequential=True)
        assert merged.rounds == 12
        assert merged.broadcasts_per_node["a"] == 2

    def test_merge_parallel(self):
        merged = merge_metrics(CongestMetrics(rounds=5), CongestMetrics(rounds=7),
                               sequential=False)
        assert merged.rounds == 7

    def test_merge_measured_flag(self):
        merged = merge_metrics(CongestMetrics(measured=True),
                               CongestMetrics(measured=False))
        assert not merged.measured


class _FloodOnce(CongestAlgorithm):
    """Toy algorithm: a designated node broadcasts a token once."""

    def __init__(self, origin):
        self.origin = origin

    def init_state(self, view):
        return {"seen": view.node_id == self.origin, "sent": False}

    def generate(self, view, state, round_index):
        if state["seen"] and not state["sent"]:
            state["sent"] = True
            return [(BROADCAST, Message(("token",)))]
        return []

    def receive(self, view, state, round_index, inbox):
        if inbox:
            state["seen"] = True

    def output(self, view, state):
        return state["seen"]


class _Oversender(CongestAlgorithm):
    def init_state(self, view):
        return {}

    def generate(self, view, state, round_index):
        return [(BROADCAST, Message(tuple(range(50))))]

    def receive(self, view, state, round_index, inbox):
        pass


class TestNetwork:
    def test_flood_reaches_everyone(self, grid):
        origin = grid.nodes()[0]
        network = CongestNetwork(grid, _FloodOnce(origin))
        network.run(max_rounds=grid.num_nodes)
        assert all(network.outputs().values())

    def test_flood_round_count_is_eccentricity(self, unit_path):
        network = CongestNetwork(unit_path, _FloodOnce(0))
        metrics = network.run(max_rounds=50)
        # The token needs exactly n-1 rounds to reach the far end of the path.
        assert metrics.rounds >= unit_path.num_nodes - 1

    def test_bandwidth_violation_raises(self, unit_path):
        network = CongestNetwork(unit_path, _Oversender())
        with pytest.raises(BandwidthViolation):
            network.run(max_rounds=1)

    def test_bandwidth_enforcement_can_be_disabled(self, unit_path):
        network = CongestNetwork(unit_path, _Oversender(), enforce_bandwidth=False)
        network.run(max_rounds=1)  # does not raise

    def test_sending_to_non_neighbor_raises(self, unit_path):
        class Bad(CongestAlgorithm):
            def init_state(self, view):
                return {}

            def generate(self, view, state, round_index):
                return [(99, Message("x"))]

            def receive(self, view, state, round_index, inbox):
                pass

        with pytest.raises(ValueError):
            CongestNetwork(unit_path, Bad()).run(max_rounds=1)

    def test_empty_graph_rejected(self):
        from repro.graphs import WeightedGraph

        with pytest.raises(ValueError):
            CongestNetwork(WeightedGraph(), _FloodOnce(0))

    def test_broadcast_counts(self, grid):
        origin = grid.nodes()[0]
        network = CongestNetwork(grid, _FloodOnce(origin))
        metrics = network.run(max_rounds=grid.num_nodes)
        # every node broadcasts exactly once
        assert all(count == 1 for count in metrics.broadcasts_per_node.values())
        assert metrics.total_messages == sum(grid.degree(v) for v in grid.nodes())


class TestBFS:
    def test_logical_bfs_tree(self, grid):
        root = grid.nodes()[0]
        tree = build_bfs_tree(grid, root)
        truth = bfs_hop_distances(grid, root)
        assert tree.depth == truth
        assert tree.height == max(truth.values())
        assert tree.parent[root] is None

    def test_path_to_root(self, unit_path):
        tree = build_bfs_tree(unit_path, 0)
        assert tree.path_to_root(5) == [5, 4, 3, 2, 1, 0]

    def test_distributed_bfs_matches_truth(self, grid):
        root = grid.nodes()[0]
        network = CongestNetwork(grid, DistributedBFS(root))
        metrics = network.run(max_rounds=grid.num_nodes + 2)
        outputs = network.outputs()
        assert verify_bfs_outputs(grid, root, outputs)
        assert metrics.rounds <= hop_diameter(grid) + 2

    def test_pipelined_broadcast_rounds(self):
        assert pipelined_broadcast_rounds(0, 5) == 0
        assert pipelined_broadcast_rounds(10, 5) == 15
        assert convergecast_rounds(10, 5) == 15
        with pytest.raises(ValueError):
            pipelined_broadcast_rounds(-1, 3)

    def test_global_broadcast_metrics(self, grid):
        metrics = global_broadcast_metrics(grid, 20)
        assert not metrics.measured
        assert metrics.rounds >= 20
