"""Tests for the Thorup–Zwick interval tree-routing scheme."""

import pytest

from repro import graphs
from repro.congest import build_bfs_tree
from repro.routing import TreeRouting, TreeRoutingError


def _bfs_tree_routing(graph, root):
    tree = build_bfs_tree(graph, root)
    return TreeRouting(root, tree.parent), tree


class TestConstruction:
    def test_single_node(self):
        tr = TreeRouting("r", {"r": None})
        assert tr.size == 1
        assert tr.height == 0
        assert tr.route("r", "r") == ["r"]

    def test_bad_root(self):
        with pytest.raises(TreeRoutingError):
            TreeRouting("r", {"r": "x", "x": None})

    def test_unknown_parent(self):
        with pytest.raises(TreeRoutingError):
            TreeRouting("r", {"r": None, "a": "ghost"})

    def test_cycle_detection(self):
        with pytest.raises(TreeRoutingError):
            TreeRouting("r", {"r": None, "a": "b", "b": "a"})

    def test_depths_and_height(self, grid):
        root = grid.nodes()[0]
        tr, bfs = _bfs_tree_routing(grid, root)
        for node in grid.nodes():
            assert tr.depth_of(node) == bfs.depth[node]
        assert tr.height == bfs.height


class TestLabelsAndTables:
    def test_labels_unique(self, grid):
        tr, _ = _bfs_tree_routing(grid, grid.nodes()[0])
        labels = [tr.label_of(v) for v in grid.nodes()]
        assert len(set(labels)) == len(labels)

    def test_label_of_unknown_node(self, grid):
        tr, _ = _bfs_tree_routing(grid, grid.nodes()[0])
        with pytest.raises(TreeRoutingError):
            tr.label_of("ghost")

    def test_table_words_scale_with_degree(self, grid):
        root = grid.nodes()[0]
        tr, bfs = _bfs_tree_routing(grid, root)
        for node in grid.nodes():
            assert tr.table_words(node) == 3 * len(bfs.children[node]) + 2


class TestRouting:
    @pytest.mark.parametrize("graph_name", ["er", "grid", "tree", "cycle"])
    def test_routes_follow_tree_and_deliver(self, graph_zoo, graph_name):
        g = graph_zoo[graph_name]
        root = g.nodes()[0]
        tr, _ = _bfs_tree_routing(g, root)
        nodes = g.nodes()
        for source in nodes[:6]:
            for target in nodes[-6:]:
                path = tr.route(source, target)
                assert path[0] == source
                assert path[-1] == target
                # every consecutive pair is a tree (hence graph) edge
                for u, v in zip(path, path[1:]):
                    assert g.has_edge(u, v)

    def test_route_via_lca_not_root(self):
        # Path graph rooted in the middle: routing between two nodes on the
        # same side must not climb to the root.
        g = graphs.path_graph(7)
        tr, _ = _bfs_tree_routing(g, 3)
        path = tr.route(5, 6)
        assert path == [5, 6]

    def test_next_hop_none_at_target(self, grid):
        tr, _ = _bfs_tree_routing(grid, grid.nodes()[0])
        target = grid.nodes()[5]
        assert tr.next_hop(target, tr.label_of(target)) is None

    def test_next_hop_outside_tree_raises(self):
        tr = TreeRouting("r", {"r": None, "a": "r"})
        with pytest.raises(TreeRoutingError):
            tr.next_hop("ghost", 0)

    def test_route_descends_into_correct_subtree(self):
        parent = {"r": None, "a": "r", "b": "r", "a1": "a", "b1": "b"}
        tr = TreeRouting("r", parent)
        assert tr.route("a1", "b1") == ["a1", "a", "r", "b", "b1"]

    def test_path_to_root(self):
        parent = {"r": None, "a": "r", "b": "a"}
        tr = TreeRouting("r", parent)
        assert tr.path_to_root("b") == ["b", "a", "r"]
