"""Unit tests for graph and weight generators."""

import pytest

from repro import graphs


class TestTopologies:
    def test_path_graph(self):
        g = graphs.path_graph(6)
        assert g.num_nodes == 6
        assert g.num_edges == 5

    def test_cycle_graph(self):
        g = graphs.cycle_graph(8)
        assert g.num_edges == 8
        assert all(g.degree(v) == 2 for v in g.nodes())

    def test_cycle_too_small(self):
        with pytest.raises(ValueError):
            graphs.cycle_graph(2)

    def test_grid_graph(self):
        g = graphs.grid_graph(3, 4)
        assert g.num_nodes == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # vertical + horizontal

    def test_complete_graph(self):
        g = graphs.complete_graph(7)
        assert g.num_edges == 21
        assert graphs.hop_diameter(g) == 1

    def test_star_graph(self):
        g = graphs.star_graph(9)
        assert g.degree(0) == 8
        assert g.num_edges == 8

    def test_random_tree_is_tree(self):
        g = graphs.random_tree(25, seed=4)
        assert g.num_edges == 24
        assert g.is_connected()

    def test_caterpillar(self):
        g = graphs.caterpillar_graph(4, 3)
        assert g.num_nodes == 4 + 12
        assert g.is_connected()

    def test_erdos_renyi_connected(self):
        g = graphs.erdos_renyi_graph(30, 0.05, seed=9)
        assert g.is_connected()

    def test_erdos_renyi_deterministic(self):
        g1 = graphs.erdos_renyi_graph(20, 0.2, graphs.uniform_weights(1, 9), seed=5)
        g2 = graphs.erdos_renyi_graph(20, 0.2, graphs.uniform_weights(1, 9), seed=5)
        assert sorted(g1.edges(), key=repr) == sorted(g2.edges(), key=repr)

    def test_barabasi_albert(self):
        g = graphs.barabasi_albert_graph(30, 2, seed=3)
        assert g.is_connected()
        assert g.num_edges >= 2 * (30 - 2) - 1

    def test_barabasi_albert_invalid(self):
        with pytest.raises(ValueError):
            graphs.barabasi_albert_graph(3, 5)

    def test_random_geometric(self):
        g = graphs.random_geometric_graph(25, 0.4, seed=2)
        assert g.is_connected()
        assert g.num_nodes == 25

    def test_make_connected(self):
        from repro.graphs import WeightedGraph
        g = WeightedGraph.from_edges([(0, 1, 1), (2, 3, 1)])
        connected = graphs.make_connected(g)
        assert connected.is_connected()


class TestRoadGrid:
    def test_connected_and_sized(self):
        g = graphs.road_grid_graph(8, 10, seed=3)
        assert g.num_nodes == 80
        assert g.is_connected()
        # grid edges plus at most the diagonal shortcuts
        grid_edges = 8 * 9 + 10 * 7
        assert grid_edges <= g.num_edges <= grid_edges + 6 * 8

    def test_highway_corridors_are_cheap(self):
        g = graphs.road_grid_graph(9, 9, highway_every=4, highway_weight=1,
                                   street_low=5, street_high=12, seed=0)
        cols = 9
        for r in (0, 4, 8):             # corridor rows
            for c in range(cols - 1):
                node = r * cols + c
                assert g.weight(node, node + 1) == 1
        # a non-corridor horizontal edge is a street
        assert 5 <= g.weight(1 * cols + 0, 1 * cols + 1) <= 12

    def test_deterministic_given_seed(self):
        a = graphs.road_grid_graph(6, 6, shortcut_fraction=0.2, seed=7)
        b = graphs.road_grid_graph(6, 6, shortcut_fraction=0.2, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_shortcut_fraction_adds_diagonals(self):
        none = graphs.road_grid_graph(10, 10, shortcut_fraction=0.0, seed=1)
        some = graphs.road_grid_graph(10, 10, shortcut_fraction=1.0, seed=1)
        assert some.num_edges > none.num_edges

    def test_validation(self):
        with pytest.raises(ValueError):
            graphs.road_grid_graph(1, 5)
        with pytest.raises(ValueError):
            graphs.road_grid_graph(5, 5, highway_every=1)
        with pytest.raises(ValueError):
            graphs.road_grid_graph(5, 5, street_low=9, street_high=3)
        with pytest.raises(ValueError):
            graphs.road_grid_graph(5, 5, shortcut_fraction=1.5)


class TestPowerlaw:
    def test_connected_and_sized(self):
        g = graphs.powerlaw_graph(60, exponent=2.3, seed=5)
        assert g.num_nodes == 60
        assert g.is_connected()

    def test_heavy_tail_has_hubs(self):
        g = graphs.powerlaw_graph(200, exponent=2.1, min_degree=2, seed=1)
        degrees = sorted((g.degree(v) for v in g.nodes()), reverse=True)
        # A hub well above the median is what distinguishes the family
        # from ER at comparable density.
        assert degrees[0] >= 3 * degrees[len(degrees) // 2]

    def test_min_degree_respected_when_connected(self):
        g = graphs.powerlaw_graph(80, exponent=2.5, min_degree=3,
                                  seed=2, connect=False)
        # Stub matching drops self-loops/duplicates, so allow slack below
        # min_degree but the bulk of nodes must reach it.
        at_least = sum(1 for v in g.nodes() if g.degree(v) >= 3)
        assert at_least >= 0.8 * g.num_nodes

    def test_deterministic_given_seed(self):
        a = graphs.powerlaw_graph(50, exponent=2.5, seed=7)
        b = graphs.powerlaw_graph(50, exponent=2.5, seed=7)
        assert sorted(a.edges()) == sorted(b.edges())
        c = graphs.powerlaw_graph(50, exponent=2.5, seed=8)
        assert sorted(a.edges()) != sorted(c.edges())

    def test_weights_strategy_applies(self):
        g = graphs.powerlaw_graph(40, weights=graphs.uniform_weights(5, 9),
                                  seed=3)
        assert all(5 <= w <= 9 for _, _, w in g.edges())

    def test_validation(self):
        with pytest.raises(ValueError):
            graphs.powerlaw_graph(2)
        with pytest.raises(ValueError):
            graphs.powerlaw_graph(30, exponent=1.0)
        with pytest.raises(ValueError):
            graphs.powerlaw_graph(30, min_degree=0)
        with pytest.raises(ValueError):
            graphs.powerlaw_graph(30, min_degree=30)


class TestFatTree:
    def test_connected_and_sized(self):
        g = graphs.fat_tree_graph(k=4)
        # (k/2)^2 cores + k pods * (k/2 agg + k/2 edge + (k/2)^2 hosts)
        assert g.num_nodes == 4 + 4 * (2 + 2 + 4)
        assert g.is_connected()

    def test_hosts_per_edge_overrides_fill(self):
        g = graphs.fat_tree_graph(k=4, hosts_per_edge=1)
        hosts = [v for v in g.nodes() if "-host" in str(v)]
        assert len(hosts) == 4 * 2  # one host under each edge switch

    def test_tier_weights(self):
        g = graphs.fat_tree_graph(k=4, core_weight=1, aggregation_weight=3,
                                  host_weight=7)
        assert g.weight("core0", "pod0-agg0") == 1
        assert g.weight("pod0-agg0", "pod0-edge0") == 3
        assert g.weight("pod0-edge0", "pod0-edge0-host0") == 7

    def test_fully_deterministic(self):
        a = graphs.fat_tree_graph(k=6, seed=0)
        b = graphs.fat_tree_graph(k=6, seed=99)  # seed is interface-only
        assert sorted(a.edges()) == sorted(b.edges())

    def test_inter_pod_paths_climb_to_core(self):
        g = graphs.fat_tree_graph(k=4, core_weight=1, aggregation_weight=2,
                                  host_weight=10)
        _, parent = graphs.dijkstra(g, "pod0-edge0-host0")
        node, path = "pod1-edge0-host0", []
        while node is not None:
            path.append(node)
            node = parent[node]
        assert any(str(v).startswith("core") for v in path)

    def test_validation(self):
        with pytest.raises(ValueError):
            graphs.fat_tree_graph(k=3)
        with pytest.raises(ValueError):
            graphs.fat_tree_graph(k=0)
        with pytest.raises(ValueError):
            graphs.fat_tree_graph(k=4, hosts_per_edge=-1)
        with pytest.raises(ValueError):
            graphs.fat_tree_graph(k=4, host_weight=0)


class TestWeightStrategies:
    def test_unit_weights(self):
        g = graphs.path_graph(5, graphs.unit_weights())
        assert all(w == 1 for _, _, w in g.edges())

    def test_uniform_weights_range(self):
        g = graphs.complete_graph(8, graphs.uniform_weights(5, 10), seed=1)
        assert all(5 <= w <= 10 for _, _, w in g.edges())

    def test_uniform_weights_invalid(self):
        with pytest.raises(ValueError):
            graphs.uniform_weights(0, 10)

    def test_heavy_tailed_bounds(self):
        g = graphs.complete_graph(10, graphs.heavy_tailed_weights(1000), seed=1)
        assert all(1 <= w <= 1000 for _, _, w in g.edges())

    def test_mixed_scale_weights_two_values(self):
        g = graphs.complete_graph(10, graphs.mixed_scale_weights(1, 500, 0.5), seed=1)
        values = {w for _, _, w in g.edges()}
        assert values <= {1, 500}
        assert len(values) == 2

    def test_standard_test_suite(self):
        suite = graphs.standard_test_suite(seed=0)
        assert len(suite) >= 8
        for name, g in suite.items():
            assert g.is_connected(), name
            assert g.num_nodes >= 10, name
