"""Tests for the deterministic (1+eps)-approximate APSP of Theorem 4.1."""

import pytest

from repro import graphs
from repro.core import approximate_apsp, stretch_statistics
from repro.graphs import all_pairs_weighted_distances


class TestApproximateAPSP:
    @pytest.mark.parametrize("epsilon", [0.1, 0.25, 0.5, 1.0])
    def test_stretch_guarantee(self, small_weighted_graph, epsilon):
        result = approximate_apsp(small_weighted_graph, epsilon=epsilon)
        audit = result.stretch_audit(small_weighted_graph)
        assert audit["missing"] == 0
        assert audit["infeasible"] == 0
        assert audit["max_stretch"] <= 1 + epsilon + 1e-9

    def test_mixed_scale_weights(self, mixed_scale_graph):
        result = approximate_apsp(mixed_scale_graph, epsilon=0.25)
        audit = result.stretch_audit(mixed_scale_graph)
        assert audit["max_stretch"] <= 1.25 + 1e-9
        assert audit["missing"] == 0

    def test_graph_zoo(self, graph_zoo):
        for name, g in graph_zoo.items():
            result = approximate_apsp(g, epsilon=0.5)
            audit = result.stretch_audit(g)
            assert audit["missing"] == 0, name
            assert audit["max_stretch"] <= 1.5 + 1e-9, name

    def test_estimate_accessors(self, small_weighted_graph):
        g = small_weighted_graph
        result = approximate_apsp(g, epsilon=0.25)
        v = g.nodes()[0]
        w = g.nodes()[1]
        assert result.estimate(v, v) == 0.0
        assert result.estimate(v, w) > 0
        hop = result.next_hop(v, w)
        assert hop is None or g.has_edge(v, hop)

    def test_estimates_symmetric_enough(self, small_weighted_graph):
        """Both directions satisfy the same (1+eps) guarantee (the estimates
        themselves need not be identical)."""
        g = small_weighted_graph
        exact = all_pairs_weighted_distances(g)
        result = approximate_apsp(g, epsilon=0.25)
        for u in g.nodes()[:6]:
            for v in g.nodes()[:6]:
                if u == v:
                    continue
                assert result.estimate(u, v) <= 1.25 * exact[u][v] + 1e-6
                assert result.estimate(v, u) <= 1.25 * exact[u][v] + 1e-6

    def test_rounds_accounting_scales_with_levels(self):
        g_small_weights = graphs.erdos_renyi_graph(
            15, 0.25, graphs.uniform_weights(1, 4), seed=1)
        g_large_weights = graphs.erdos_renyi_graph(
            15, 0.25, graphs.uniform_weights(1000, 10 ** 6), seed=1)
        r_small = approximate_apsp(g_small_weights, epsilon=0.25)
        r_large = approximate_apsp(g_large_weights, epsilon=0.25)
        assert r_large.metrics.rounds > r_small.metrics.rounds

    def test_too_small_graph_rejected(self):
        g = graphs.path_graph(1)
        with pytest.raises(ValueError):
            approximate_apsp(g, epsilon=0.5)

    def test_unweighted_graph_exact(self, unit_path):
        result = approximate_apsp(unit_path, epsilon=0.5)
        audit = result.stretch_audit(unit_path)
        # With unit weights there is a single rounding level and the result
        # is exact.
        assert audit["max_stretch"] == pytest.approx(1.0)


class TestStretchStatistics:
    def test_perfect_estimates(self, grid):
        exact = all_pairs_weighted_distances(grid)
        stats = stretch_statistics(exact, exact)
        assert stats["max_stretch"] == pytest.approx(1.0)
        assert stats["missing"] == 0
        assert stats["infeasible"] == 0

    def test_missing_and_infeasible_detection(self):
        exact = {"a": {"b": 10.0}, "b": {"a": 10.0}}
        estimates = {"a": {}, "b": {"a": 5.0}}
        stats = stretch_statistics(estimates, exact)
        assert stats["missing"] == 1
        assert stats["infeasible"] == 1

    def test_empty_estimates(self):
        exact = {"a": {"b": 1.0}}
        stats = stretch_statistics({}, exact)
        assert stats["max_stretch"] == float("inf")
