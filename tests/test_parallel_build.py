"""Parallel hierarchy construction: identity, degeneracy, failure, wiring.

The contract under test is absolute: ``build_workers`` may change wall
clock and nothing else.  A hierarchy built on N processes must be
*artifact-checksum-identical* to the sequential build — same
``payload_sha256``, not merely the same answers — across every
construction mode and pool-eligible engine.  A worker crash mid-build
must surface a typed error without hanging and without leaving a partial
artifact behind.
"""

import os
import tempfile

import pytest

from repro import graphs
from repro.core.pde import solve_pde
from repro.routing.compact import build_compact_routing
from repro.routing.parallel_build import (
    CRASH_ENV_VAR,
    ParallelBuildError,
    solve_pde_parallel,
)
from repro.serving import BuildConfig, ServingConfig, open_service
from repro.serving.artifacts import artifact_info, save_hierarchy
from repro.serving.cli import build_parser, config_from_args


def small_graph(n=40, seed=3):
    p = min(1.0, 6.0 / max(1, n - 1))
    return graphs.erdos_renyi_graph(n, p, graphs.uniform_weights(1, 12),
                                    seed=seed)


def _checksum(hierarchy, tmp, name):
    path = os.path.join(tmp, name)
    save_hierarchy(hierarchy, path)
    return artifact_info(path).payload_sha256


# ----------------------------------------------------------------------
# solve_pde level
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["logical", "batched"])
def test_solve_pde_parallel_identity(engine):
    graph = small_graph()
    sources = sorted(graph.nodes())[:6]
    seq = solve_pde(graph, sources, h=6, sigma=3, epsilon=0.25,
                    engine=engine, store_levels=True)
    par = solve_pde(graph, sources, h=6, sigma=3, epsilon=0.25,
                    engine=engine, store_levels=True, build_workers=2)
    assert par.export_state() == seq.export_state()


def test_solve_pde_build_workers_one_is_sequential():
    graph = small_graph()
    sources = sorted(graph.nodes())[:4]
    seq = solve_pde(graph, sources, h=5, sigma=2, epsilon=0.25)
    one = solve_pde(graph, sources, h=5, sigma=2, epsilon=0.25,
                    build_workers=1)
    assert one.export_state() == seq.export_state()


def test_solve_pde_rejects_bad_build_workers():
    graph = small_graph()
    sources = sorted(graph.nodes())[:2]
    with pytest.raises(ValueError, match="build_workers must be >= 1"):
        solve_pde(graph, sources, h=4, sigma=2, epsilon=0.25,
                  build_workers=0)
    with pytest.raises(ValueError, match="simulate"):
        solve_pde(graph, sources, h=4, sigma=2, epsilon=0.25,
                  engine="simulate", build_workers=2)


# ----------------------------------------------------------------------
# full hierarchy: checksum identity across modes and engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["budget", "spd", "truncated"])
@pytest.mark.parametrize("engine", ["logical", "batched"])
def test_parallel_build_checksum_identical(mode, engine):
    graph = small_graph()
    kwargs = dict(k=3, epsilon=0.25, seed=7, mode=mode, engine=engine)
    if mode == "truncated":
        kwargs["l0"] = 2
    seq = build_compact_routing(graph, **kwargs)
    par = build_compact_routing(graph, build_workers=2, **kwargs)
    with tempfile.TemporaryDirectory() as tmp:
        assert (_checksum(par, tmp, "par") == _checksum(seq, tmp, "seq"))


def test_build_workers_absent_from_build_params():
    # build_params serialises into the checksummed meta section, so the
    # worker count must never leak into it (provenance lives in the
    # artifact *header*, via the serving config).
    graph = small_graph(30)
    hierarchy = build_compact_routing(graph, 3, seed=1, build_workers=2)
    assert "build_workers" not in hierarchy.build_params


def test_build_rejects_bad_build_workers():
    graph = small_graph(30)
    with pytest.raises(ValueError, match="build_workers must be >= 1"):
        build_compact_routing(graph, 3, build_workers=0)
    with pytest.raises(ValueError, match="simulate"):
        build_compact_routing(graph, 3, engine="simulate", build_workers=2)


# ----------------------------------------------------------------------
# worker crash: typed error, no hang, no partial artifact
# ----------------------------------------------------------------------
def test_worker_crash_surfaces_typed_error(monkeypatch):
    graph = small_graph(30)
    sources = sorted(graph.nodes())[:4]
    monkeypatch.setenv(CRASH_ENV_VAR, "graph:0")
    with pytest.raises(ParallelBuildError, match="worker died"):
        solve_pde_parallel(graph, sources, h=5, sigma=2, epsilon=0.25,
                           engine="batched", build_workers=2)


def test_worker_crash_leaves_no_partial_artifact(monkeypatch):
    graph = small_graph(30)
    monkeypatch.setenv(CRASH_ENV_VAR, "graph:0")
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "crash.artifact")
        config = ServingConfig(
            artifact_path=path,
            build=BuildConfig(k=3, seed=1, build_workers=2))
        with pytest.raises(ParallelBuildError):
            open_service(config, graph=graph)
        assert not os.path.exists(path)
        assert os.listdir(tmp) == []   # no tmp-file debris either


# ----------------------------------------------------------------------
# config / CLI wiring
# ----------------------------------------------------------------------
@pytest.mark.parametrize("bad", [0, -1, 1.5, True, "4"])
def test_build_config_rejects_bad_build_workers(bad):
    with pytest.raises(ValueError, match="build_workers"):
        BuildConfig(build_workers=bad)


def test_build_config_default_is_sequential():
    assert BuildConfig().build_workers == 1
    assert BuildConfig(build_workers=3).build_workers == 3


def test_cli_build_workers_flag_reaches_config():
    parser = build_parser()
    args = parser.parse_args(["--graph", "er:n=30,p=0.2",
                              "--build-workers", "4"])
    config = config_from_args(args, parser)
    assert config.build.build_workers == 4
    default = config_from_args(parser.parse_args(
        ["--graph", "er:n=30,p=0.2"]), parser)
    assert default.build.build_workers == 1


def test_open_service_parallel_build_matches_sequential():
    graph = small_graph(30)
    with tempfile.TemporaryDirectory() as tmp:
        checksums = {}
        for name, workers in (("seq", 1), ("par", 2)):
            path = os.path.join(tmp, f"{name}.artifact")
            service = open_service(ServingConfig(
                artifact_path=path,
                build=BuildConfig(k=3, seed=5, build_workers=workers)),
                graph=graph)
            service.close()
            checksums[name] = artifact_info(path).payload_sha256
        assert checksums["par"] == checksums["seq"]
