"""Transport layer: wire robustness, networked sessions, pipelined sharded.

Three layers under test, bottom up:

* the frame codec (:mod:`repro.serving.wire`) — every malformed byte
  stream must raise a *typed* error immediately, never hang or
  desynchronise;
* :class:`ClientSession` / :class:`ServerSession` /
  :class:`RoutingServer` — a networked backend must be list-for-list
  identical to the in-process service it fronts, for one client and for
  several concurrent ones, and must negotiate config/graph and fold wire
  telemetry into stats;
* the pipelined sharded front-end — ``submit_batch`` / ``wait_batch``
  with bounded in-flight windows and admission control.
"""

import dataclasses
import gc
import io
import struct
import threading
import warnings

import pytest

from repro import graphs
from repro.serving import (
    BuildConfig,
    BackpressureError,
    CacheConfig,
    ClientSession,
    FrameError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolVersionError,
    RemoteError,
    RoutingServer,
    ServerSession,
    ServingConfig,
    SessionClosedError,
    ShardedRoutingService,
    WireError,
    open_service,
    parse_endpoint,
    read_frame,
    write_frame,
    zipf_workload,
)
from repro.serving.wire import (
    check_hello,
    decode_answers,
    encode_answers,
    encode_frame,
    encode_message,
    hello_message,
    pack_node,
    pack_pairs,
    unpack_node,
    unpack_pairs,
)
from repro.serving.workloads import bursty_workload, uniform_workload


@pytest.fixture(scope="module")
def net_graph():
    return graphs.erdos_renyi_graph(40, 0.12, graphs.uniform_weights(1, 30),
                                    seed=9)


@pytest.fixture(scope="module")
def net_config(net_graph, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("net") / "hierarchy.artifact")
    config = ServingConfig(artifact_path=path, build=BuildConfig(seed=2),
                           graph_spec="er:n=40,p=0.12,seed=9,"
                                      "weights=uniform:1:30")
    open_service(config, graph=net_graph)
    return config


@pytest.fixture(scope="module")
def local_backend(net_config):
    return open_service(net_config)


@pytest.fixture(scope="module")
def server(local_backend, net_config):
    with RoutingServer(local_backend, "127.0.0.1:0",
                       config=net_config) as srv:
        yield srv


# ======================================================================
# frame codec robustness
# ======================================================================
class TestWireFrames:
    def test_round_trip(self):
        message = {"type": "query", "id": 3, "pairs": [[1, 2]]}
        stream = io.BytesIO(encode_frame(message))
        assert read_frame(stream) == message

    def test_canonical_encoding_is_key_order_independent(self):
        a = encode_message({"type": "x", "b": 1, "a": 2})
        b = encode_message({"a": 2, "b": 1, "type": "x"})
        assert a == b

    def test_truncated_payload_raises_frame_error(self):
        frame = encode_frame({"type": "close"})
        with pytest.raises(FrameError, match="truncated"):
            read_frame(io.BytesIO(frame[:-3]))

    def test_truncated_header_raises_frame_error(self):
        frame = encode_frame({"type": "close"})
        with pytest.raises(FrameError, match="truncated"):
            read_frame(io.BytesIO(frame[:3]))

    def test_bad_magic_raises_frame_error(self):
        frame = b"XX" + encode_frame({"type": "close"})[2:]
        with pytest.raises(FrameError, match="magic"):
            read_frame(io.BytesIO(frame))

    def test_absurd_length_prefix_raises_frame_error(self):
        header = struct.pack(">2sI", b"RW", MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameError, match="length prefix"):
            read_frame(io.BytesIO(header + b"\x00" * 16))

    def test_clean_eof_between_frames_is_session_closed(self):
        with pytest.raises(SessionClosedError):
            read_frame(io.BytesIO(b""))

    def test_undecodable_payload_raises_frame_error(self):
        garbage = b"\xff\xfe not json"
        frame = struct.pack(">2sI", b"RW", len(garbage)) + garbage
        with pytest.raises(FrameError, match="undecodable"):
            read_frame(io.BytesIO(frame))

    def test_untyped_payload_raises_frame_error(self):
        payload = encode_message({"type": "x"}).replace(b'"type"', b'"nope"')
        frame = struct.pack(">2sI", b"RW", len(payload)) + payload
        with pytest.raises(FrameError, match="typed"):
            read_frame(io.BytesIO(frame))

    def test_oversize_message_refused_before_send(self):
        with pytest.raises(FrameError, match="exceeds"):
            encode_frame({"type": "blob", "data": "x" * (MAX_FRAME_BYTES + 1)})

    def test_write_frame_counts_bytes(self):
        stream = io.BytesIO()
        written = write_frame(stream, {"type": "close"})
        assert written == len(stream.getvalue())

    def test_tuple_nodes_survive_round_trip(self):
        nodes = [(1, 2), ((0, 1), 3), "v", 7, None]
        assert [unpack_node(pack_node(n)) for n in nodes] == nodes
        pairs = [((1, 2), (3, 4)), (0, 1)]
        assert unpack_pairs(pack_pairs(pairs)) == pairs

    def test_unencodable_node_raises(self):
        with pytest.raises(WireError, match="not\\s+wire-encodable"):
            pack_node(object())

    def test_malformed_packed_node_raises(self):
        with pytest.raises(FrameError, match="malformed"):
            unpack_node({"__t": [1], "extra": 2})

    def test_distance_answers_round_trip(self):
        values = [1.0, float("inf"), 2.5]
        assert decode_answers("distance",
                              encode_answers("distance", values)) == values

    def test_parse_endpoint(self):
        assert parse_endpoint("localhost:80") == ("localhost", 80)
        assert parse_endpoint(":9000") == ("", 9000)
        for bad in ("nohost", "h:notaport", "h:70000"):
            with pytest.raises(ValueError):
                parse_endpoint(bad)

    def test_check_hello(self):
        assert check_hello(hello_message()) is None
        assert "protocol version" in check_hello(hello_message(protocol=99))
        assert "expected hello" in check_hello({"type": "query"})


# ======================================================================
# handshake and session-level failure paths
# ======================================================================
class TestHandshake:
    def test_server_rejects_wrong_version(self, local_backend, net_config):
        rfile = io.BytesIO(encode_frame(hello_message(protocol=99)))
        wfile = io.BytesIO()
        session = ServerSession(local_backend, rfile, wfile,
                                config=net_config)
        assert session.handshake() is False
        reply = read_frame(io.BytesIO(wfile.getvalue()))
        assert reply["type"] == "error"
        assert reply["code"] == "protocol-version"

    def test_server_rejects_non_hello_first_frame(self, local_backend):
        rfile = io.BytesIO(encode_frame({"type": "query", "id": 1}))
        wfile = io.BytesIO()
        session = ServerSession(local_backend, rfile, wfile)
        assert session.handshake() is False
        reply = read_frame(io.BytesIO(wfile.getvalue()))
        assert reply["code"] == "bad-hello"

    def test_client_raises_typed_error_on_version_mismatch(
            self, server, monkeypatch):
        import repro.serving.session as session_mod
        monkeypatch.setattr(session_mod, "hello_message",
                            lambda name: hello_message(name, protocol=99))
        with pytest.raises(ProtocolVersionError, match="99"):
            ClientSession.connect(server.address, timeout=5.0,
                                  reply_timeout=5.0)

    def test_client_rejects_non_welcome_reply(self, local_backend):
        rfile = io.BytesIO(encode_frame({"type": "stats_reply", "stats": {}}))
        with pytest.raises(FrameError, match="expected welcome"):
            ClientSession(rfile, io.BytesIO())

    def test_mid_stream_disconnect_raises_session_closed(
            self, local_backend, net_config, net_graph):
        # A server that vanishes after the welcome frame: the client's next
        # read hits a clean EOF and must raise, not hang.
        welcome = encode_frame({"type": "welcome",
                                "protocol": PROTOCOL_VERSION,
                                "server": "t", "config": None})
        client = ClientSession(io.BytesIO(welcome), io.BytesIO())
        nodes = net_graph.nodes()
        with pytest.raises(SessionClosedError, match="closed the connection"):
            client.distance_batch([(nodes[0], nodes[1])])
        client.close()

    def test_truncated_reply_mid_frame_raises_frame_error(self, net_graph):
        welcome = encode_frame({"type": "welcome",
                                "protocol": PROTOCOL_VERSION,
                                "server": "t", "config": None})
        answers = encode_frame({"type": "answers", "id": 1,
                                "kind": "distance", "values": [1.0]})
        client = ClientSession(io.BytesIO(welcome + answers[:-2]),
                               io.BytesIO())
        nodes = net_graph.nodes()
        with pytest.raises(FrameError, match="truncated"):
            client.distance_batch([(nodes[0], nodes[1])])
        client.close()

    def test_unclosed_client_session_warns_with_endpoint(self, server):
        client = ClientSession.connect(server.address, timeout=5.0,
                                       reply_timeout=5.0)
        endpoint = client.endpoint
        with pytest.warns(ResourceWarning,
                          match=f"unclosed ClientSession to {endpoint}"):
            del client
            gc.collect()

    def test_close_is_idempotent_and_blocks_further_queries(self, server):
        client = ClientSession.connect(server.address, timeout=5.0,
                                       reply_timeout=5.0)
        client.close()
        client.close()
        with pytest.raises(SessionClosedError):
            client.submit("distance", [])


# ======================================================================
# networked backend == local backend
# ======================================================================
def _batches(workload, batch_size=25):
    pairs = workload.pairs
    return [pairs[i:i + batch_size]
            for i in range(0, len(pairs), batch_size)]


class TestNetworkedIdentity:
    def test_single_client_routes_identical(self, server, local_backend,
                                            net_graph):
        workload = zipf_workload(net_graph.nodes(), 120, seed=5)
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0) as client:
            for batch in _batches(workload):
                assert client.route_batch(batch) == \
                    local_backend.route_batch(batch)
                assert client.distance_batch(batch) == \
                    local_backend.distance_batch(batch)

    def test_strict_request_reply_window_one(self, server, local_backend,
                                             net_graph):
        workload = uniform_workload(net_graph.nodes(), 60, seed=3)
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0, window=1) as client:
            for batch in _batches(workload, 20):
                assert client.distance_batch(batch) == \
                    local_backend.distance_batch(batch)

    def test_pipelined_submit_gather_out_of_order(self, server,
                                                  local_backend, net_graph):
        workload = zipf_workload(net_graph.nodes(), 80, seed=11)
        batches = _batches(workload, 10)
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0, window=8) as client:
            tickets = [client.submit("distance", batch) for batch in batches]
            # gather in reverse submission order: results still line up
            for ticket, batch in zip(reversed(tickets), reversed(batches)):
                assert client.gather(ticket) == \
                    local_backend.distance_batch(batch)

    def test_concurrent_clients_each_identical(self, server, local_backend,
                                               net_graph):
        nodes = net_graph.nodes()
        workloads = [zipf_workload(nodes, 80, seed=21),
                     uniform_workload(nodes, 80, seed=22),
                     bursty_workload(nodes, 80, seed=23)]
        expected = [[local_backend.route_batch(batch)
                     for batch in _batches(w, 16)] for w in workloads]
        failures = []

        def drive(workload, want):
            try:
                with ClientSession.connect(server.address, timeout=5.0,
                                           reply_timeout=30.0) as client:
                    got = [client.route_batch(batch)
                           for batch in _batches(workload, 16)]
                if got != want:
                    failures.append("answers diverged")
            except Exception as exc:   # noqa: BLE001 - surfaced below
                failures.append(repr(exc))

        threads = [threading.Thread(target=drive, args=(w, want))
                   for w, want in zip(workloads, expected)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not failures, failures

    def test_bad_query_kind_is_per_request_error(self, server):
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0) as client:
            with pytest.raises(ValueError, match="kind"):
                client.submit("teleport", [])
            # the session survives client-side validation
            assert client.distance_batch([]) == []

    def test_remote_backend_error_is_typed_and_survivable(self, server,
                                                          net_graph):
        nodes = net_graph.nodes()
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0) as client:
            with pytest.raises(RemoteError):
                client.distance_batch([("no-such-node", nodes[0])])
            # per-request error: later batches on the same session work
            assert len(client.distance_batch([(nodes[0], nodes[1])])) == 1


class TestNegotiationAndStats:
    def test_welcome_carries_resolved_config(self, server, net_config):
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0) as client:
            assert client.protocol == PROTOCOL_VERSION
            assert client.server_name == "repro-serve"
            assert client.remote_config["graph_spec"] == \
                net_config.graph_spec

    def test_client_graph_regenerated_from_spec(self, server, net_graph):
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0) as client:
            remote = client.graph
            assert remote.nodes() == net_graph.nodes()
            assert remote.num_edges == net_graph.num_edges

    def test_stats_round_trip_with_wire_extras(self, server, net_graph):
        nodes = net_graph.nodes()
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0) as client:
            client.distance_batch([(nodes[0], nodes[1]), (nodes[2],
                                                          nodes[3])])
            stats = client.query_stats()
            wire = stats.extra["wire"]
            assert wire["endpoint"] == server.address
            assert wire["protocol"] == PROTOCOL_VERSION
            assert wire["session_queries"] == 2
            assert wire["session_batches"] == 1

    def test_final_stats_preserved_after_close(self, server, net_graph):
        nodes = net_graph.nodes()
        client = ClientSession.connect(server.address, timeout=5.0,
                                       reply_timeout=30.0)
        client.distance_batch([(nodes[0], nodes[1])])
        client.close()
        stats = client.query_stats()   # served from the bye frame
        assert stats.extra["wire"]["session_queries"] == 1

    def test_wire_telemetry_spans_present(self, server, net_graph):
        nodes = net_graph.nodes()
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0,
                                   telemetry=True) as client:
            client.distance_batch([(nodes[0], nodes[1])])
            stats = client.query_stats()
            telemetry = stats.extra["telemetry"]
            for span in ("serialize", "wire_send", "inflight_wait"):
                assert span in telemetry, span
            assert stats.extra["wire"]["wire_frames_sent"] >= 2

    def test_server_stats_track_sessions(self, server):
        before = server.sessions_served
        with ClientSession.connect(server.address, timeout=5.0,
                                   reply_timeout=30.0):
            pass
        stats = server.stats()
        assert stats.extra["server"]["address"] == server.address
        assert stats.extra["server"]["sessions_served"] > before


# ======================================================================
# connect-mode config plumbing (open_service returns a ClientSession)
# ======================================================================
class TestConnectConfig:
    def test_open_service_connect_returns_client_session(self, server,
                                                         local_backend,
                                                         net_graph):
        config = ServingConfig(connect=server.address)
        workload = zipf_workload(net_graph.nodes(), 40, seed=7)
        with open_service(config) as backend:
            assert isinstance(backend, ClientSession)
            for batch in _batches(workload, 20):
                assert backend.route_batch(batch) == \
                    local_backend.route_batch(batch)

    def test_connect_config_rejects_local_backend_fields(self):
        with pytest.raises(ValueError, match="workers=1"):
            ServingConfig(connect="h:1", workers=2)
        with pytest.raises(ValueError, match="graph and artifact"):
            ServingConfig(connect="h:1", graph_spec="path:n=4")

    def test_artifact_only_server_advertises_stored_graph_spec(
            self, net_config):
        from repro.serving.cli import advertised_config

        # an artifact-only deployment (no --graph): the spec that built
        # the artifact is recovered from its header for negotiation
        bare = ServingConfig(artifact_path=net_config.artifact_path,
                             build=net_config.build)
        assert advertised_config(bare).graph_spec == net_config.graph_spec
        # an explicit spec wins; a spec-less config without an artifact
        # passes through untouched
        assert advertised_config(net_config) is net_config
        assert advertised_config(ServingConfig(connect="h:1")).graph_spec \
            is None

    def test_session_without_advertised_graph_fails_clearly(
            self, local_backend):
        from repro.serving.cli import run_serving_session

        # a server that advertises no config at all: the client backend
        # has no graph, so workload generation must fail with guidance,
        # not an AttributeError deep in a generator
        with RoutingServer(local_backend, "127.0.0.1:0") as srv:
            config = ServingConfig(connect=srv.address)
            with pytest.raises(ValueError, match="advertise a graph spec"):
                run_serving_session(config)


# ======================================================================
# pipelined sharded front-end
# ======================================================================
@pytest.fixture(scope="module")
def sharded_service(net_config, net_graph):
    config = dataclasses.replace(
        net_config, workers=2, cache=CacheConfig(capacity=512))
    service = open_service(config, graph=net_graph)
    assert isinstance(service, ShardedRoutingService)
    with service:
        yield service


class TestPipelinedSharded:
    def test_submit_wait_matches_sequential(self, sharded_service,
                                            local_backend, net_graph):
        workload = zipf_workload(net_graph.nodes(), 100, seed=13)
        batches = _batches(workload, 10)
        tickets = [sharded_service.submit_batch("route", batch)
                   for batch in batches]
        for ticket, batch in zip(tickets, batches):
            assert sharded_service.wait_batch(ticket) == \
                local_backend.route_batch(batch)

    def test_admission_reject_raises_backpressure(self, net_config,
                                                  net_graph):
        config = dataclasses.replace(net_config, workers=2,
                                     pipeline_depth=1, admission="reject")
        pairs = zipf_workload(net_graph.nodes(), 400, seed=2).pairs
        with open_service(config, graph=net_graph) as service:
            service.distance_batch(pairs[:4])   # warm: spawn cost paid
            first = service.submit_batch("distance", pairs)
            # depth 1 is occupied until the collector drains `first`;
            # a second submission must bounce, not queue.
            with pytest.raises(BackpressureError, match="pipeline full"):
                service.submit_batch("distance", pairs[:4])
            assert len(service.wait_batch(first)) == len(pairs)

    def test_admission_block_completes_beyond_depth(self, net_config,
                                                    net_graph):
        config = dataclasses.replace(net_config, workers=2,
                                     pipeline_depth=2, max_inflight=1)
        workload = uniform_workload(net_graph.nodes(), 120, seed=4)
        batches = _batches(workload, 8)
        with open_service(config, graph=net_graph) as service:
            tickets = [service.submit_batch("distance", batch)
                       for batch in batches]
            results = [service.wait_batch(ticket) for ticket in tickets]
        flat = [value for batch in results for value in batch]
        assert len(flat) == len(workload.pairs)

    def test_merged_stats_report_pipeline_shape(self, sharded_service):
        stats = sharded_service.merged_stats()
        pipeline = stats.extra["pipeline"]
        assert pipeline["depth"] == sharded_service.pipeline_depth
        assert pipeline["max_inflight"] == sharded_service.max_inflight
        assert pipeline["admission"] in ("block", "reject")

    def test_server_over_sharded_backend_identical(self, sharded_service,
                                                   local_backend, net_config,
                                                   net_graph):
        workloads = [zipf_workload(net_graph.nodes(), 60, seed=31),
                     bursty_workload(net_graph.nodes(), 60, seed=32)]
        expected = [[local_backend.route_batch(batch)
                     for batch in _batches(w, 12)] for w in workloads]
        failures = []
        with RoutingServer(sharded_service, "127.0.0.1:0",
                           config=net_config) as srv:
            def drive(workload, want):
                try:
                    with ClientSession.connect(srv.address, timeout=5.0,
                                               reply_timeout=30.0) as client:
                        got = [client.route_batch(batch)
                               for batch in _batches(workload, 12)]
                    if got != want:
                        failures.append("answers diverged")
                except Exception as exc:   # noqa: BLE001 - surfaced below
                    failures.append(repr(exc))

            threads = [threading.Thread(target=drive, args=(w, want))
                       for w, want in zip(workloads, expected)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60.0)
        assert not failures, failures
